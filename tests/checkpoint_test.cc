// Crash-safety suite (docs/ROBUSTNESS.md): checkpoint round-trips across
// every registered baseline, truncation/bit-flip corruption (CRC + stream
// validation), manifest fallback, kill-and-resume bitwise equality, and
// non-finite-loss skip/rollback recovery.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/gru_forecaster.h"
#include "baselines/registry.h"
#include "data/dataset_registry.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "train/checkpoint.h"
#include "train/optimizer.h"
#include "train/trainer.h"
#include "util/binary_io.h"
#include "util/metrics.h"
#include "util/random.h"

namespace conformer::train {
namespace {

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = "/tmp/conformer_ckpt_" + tag + "_" +
                          std::to_string(static_cast<int64_t>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TrainProgress MakeProgress(int64_t global_step, uint64_t rng_seed = 9) {
  TrainProgress p;
  p.global_step = global_step;
  p.epoch = 1;
  p.step_in_epoch = 2;
  p.loss_sum = 1.5;
  p.finite_batches = 2;
  p.best_val = 0.25;
  p.bad_epochs = 1;
  p.epoch_rng_state = Rng(rng_seed).Serialize();
  p.result.epochs_run = 1;
  p.result.train_losses = {0.75};
  p.result.val_mses = {0.25};
  return p;
}

void ExpectParamsBitwiseEqual(const nn::Module& a, const nn::Module& b) {
  const auto pa = a.NamedParameters();
  const auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].first, pb[i].first);
    ASSERT_EQ(pa[i].second.numel(), pb[i].second.numel()) << pa[i].first;
    EXPECT_EQ(std::memcmp(pa[i].second.data(), pb[i].second.data(),
                          pa[i].second.numel() * sizeof(float)),
              0)
        << "parameter '" << pa[i].first << "' differs";
  }
}

// -- Rng / optimizer state round-trips ---------------------------------------

TEST(RngStateTest, SerializeRoundTripReproducesDraws) {
  Rng a(123);
  a.Uniform();  // Advance past the seed state.
  const std::string state = a.Serialize();
  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(a.Uniform());

  Rng b(999);
  ASSERT_TRUE(b.Deserialize(state).ok());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(expected[i], b.Uniform());
}

TEST(RngStateTest, RejectsMalformedState) {
  Rng rng(1);
  EXPECT_FALSE(rng.Deserialize("not a generator state").ok());
  const double next = Rng(1).Uniform();
  EXPECT_EQ(rng.Uniform(), next);  // Failed restore left the state intact.
}

TEST(OptimizerStateTest, AdamResumedTrajectoryIsBitwiseIdentical) {
  Tensor x = Tensor::Full({4}, 3.0f).set_requires_grad(true);
  Adam opt({x}, 0.1f);
  auto step = [](Tensor& t, Adam& o) {
    o.ZeroGrad();
    Sum(Mul(t, t)).Backward();
    o.Step();
  };
  for (int i = 0; i < 5; ++i) step(x, opt);
  std::ostringstream state(std::ios::binary);
  opt.SaveState(state);
  std::vector<float> mid(x.data(), x.data() + x.numel());
  for (int i = 0; i < 5; ++i) step(x, opt);

  Tensor y = Tensor::FromVector(mid, {4}).set_requires_grad(true);
  Adam opt2({y}, 0.05f);  // Different LR: LoadState must restore the saved one.
  std::istringstream in(state.str(), std::ios::binary);
  ASSERT_TRUE(opt2.LoadState(in).ok());
  for (int i = 0; i < 5; ++i) step(y, opt2);
  EXPECT_EQ(std::memcmp(x.data(), y.data(), 4 * sizeof(float)), 0);
}

TEST(OptimizerStateTest, LoadRejectsBufferCountMismatch) {
  Tensor a = Tensor::Full({2}, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Full({2}, 1.0f).set_requires_grad(true);
  Adam two({a, b}, 0.1f);
  std::ostringstream state(std::ios::binary);
  two.SaveState(state);

  Adam one({a}, 0.1f);
  std::istringstream in(state.str(), std::ios::binary);
  const Status st = one.LoadState(in);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("buffers"), std::string::npos);
}

// -- Checkpoint round-trip over every registered model -----------------------

TEST(CheckpointTest, RoundTripAcrossAllRegisteredBaselines) {
  const std::string root = MakeTempDir("roundtrip");
  data::WindowConfig window{.input_len = 16, .label_len = 8, .pred_len = 8};
  models::ModelHyperParams hp;
  hp.d_model = 8;
  hp.n_heads = 2;
  hp.hidden = 8;
  hp.ma_kernel = 5;
  hp.dropout = 0.0f;
  hp.seasonal_period = 4;

  for (const std::string& name : models::AvailableModels()) {
    SCOPED_TRACE(name);
    SeedGlobalRng(100);
    auto src = models::MakeForecaster(name, window, /*dims=*/3, hp);
    ASSERT_TRUE(src.ok()) << src.status().ToString();
    SeedGlobalRng(200);  // Different init so the restore is observable.
    auto dst = models::MakeForecaster(name, window, /*dims=*/3, hp);
    ASSERT_TRUE(dst.ok());

    CheckpointManager manager(root + "/" + name, /*keep_last=*/2);
    Adam src_opt(src.value()->Parameters(), 1e-3f);
    ASSERT_TRUE(
        manager.Save(*src.value(), src_opt, MakeProgress(7)).ok());

    Adam dst_opt(dst.value()->Parameters(), 1e-3f);
    TrainProgress restored;
    ASSERT_TRUE(
        manager.RestoreLatest(dst.value().get(), &dst_opt, &restored).ok());
    ExpectParamsBitwiseEqual(*src.value(), *dst.value());
    EXPECT_EQ(restored.global_step, 7);
    EXPECT_EQ(restored.epoch, 1);
    EXPECT_EQ(restored.step_in_epoch, 2);
    EXPECT_EQ(restored.best_val, 0.25);
    ASSERT_EQ(restored.result.train_losses.size(), 1u);
    EXPECT_EQ(restored.result.train_losses[0], 0.75);
    EXPECT_EQ(restored.epoch_rng_state, Rng(9).Serialize());
  }
  std::filesystem::remove_all(root);
}

// -- Corruption: truncation fuzz, bit flips, fallback ------------------------

TEST(CheckpointFuzzTest, TruncationAtEveryByteOffsetErrorsCleanly) {
  const std::string dir = MakeTempDir("truncfuzz");
  nn::Linear model(4, 3);
  Sgd opt(model.Parameters(), 0.1f, 0.5f);
  CheckpointManager manager(dir, 2);
  ASSERT_TRUE(manager.Save(model, opt, MakeProgress(1)).ok());
  Result<std::vector<std::string>> list = manager.ListCheckpoints();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().size(), 1u);
  const std::string bytes = ReadFileBytes(list.value()[0]);
  ASSERT_GT(bytes.size(), 100u);

  const std::string victim = dir + "/truncated.ckpt";
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(victim, bytes.substr(0, len));
    nn::Linear target(4, 3);
    Sgd target_opt(target.Parameters(), 0.1f, 0.5f);
    TrainProgress progress;
    const Status st = LoadCheckpointFile(victim, &target, &target_opt,
                                         &progress);
    ASSERT_FALSE(st.ok()) << "truncation to " << len
                          << " bytes was not detected";
    ASSERT_FALSE(st.message().empty());
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFuzzTest, SingleBitFlipsAreCaught) {
  const std::string dir = MakeTempDir("bitflip");
  nn::Linear model(4, 3);
  Sgd opt(model.Parameters(), 0.1f, 0.5f);
  CheckpointManager manager(dir, 2);
  ASSERT_TRUE(manager.Save(model, opt, MakeProgress(1)).ok());
  const std::string path = manager.ListCheckpoints().value()[0];
  const std::string bytes = ReadFileBytes(path);

  const std::string victim = dir + "/flipped.ckpt";
  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x20);
    WriteFileBytes(victim, corrupt);
    nn::Linear target(4, 3);
    Sgd target_opt(target.Parameters(), 0.1f, 0.5f);
    TrainProgress progress;
    const Status st = LoadCheckpointFile(victim, &target, &target_opt,
                                         &progress);
    ASSERT_FALSE(st.ok()) << "bit flip at offset " << offset
                          << " was not detected";
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, FallsBackToPreviousCheckpointWhenNewestIsCorrupt) {
  const std::string dir = MakeTempDir("fallback");
  nn::Linear model(3, 2);
  Sgd opt(model.Parameters(), 0.1f);
  CheckpointManager manager(dir, 2);

  model.Parameters()[0].data()[0] = 11.0f;
  ASSERT_TRUE(manager.Save(model, opt, MakeProgress(1)).ok());
  model.Parameters()[0].data()[0] = 22.0f;
  ASSERT_TRUE(manager.Save(model, opt, MakeProgress(2)).ok());

  Result<std::vector<std::string>> list = manager.ListCheckpoints();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().size(), 2u);
  const std::string newest = list.value().back();
  std::string bytes = ReadFileBytes(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  WriteFileBytes(newest, bytes);

  nn::Linear target(3, 2);
  Sgd target_opt(target.Parameters(), 0.1f);
  TrainProgress progress;
  ASSERT_TRUE(manager.RestoreLatest(&target, &target_opt, &progress).ok());
  EXPECT_EQ(progress.global_step, 1);
  EXPECT_EQ(target.Parameters()[0].data()[0], 11.0f);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, RetentionPrunesOldCheckpoints) {
  const std::string dir = MakeTempDir("retention");
  nn::Linear model(3, 2);
  Sgd opt(model.Parameters(), 0.1f);
  CheckpointManager manager(dir, /*keep_last=*/2);
  for (int64_t step = 1; step <= 4; ++step) {
    ASSERT_TRUE(manager.Save(model, opt, MakeProgress(step)).ok());
  }
  Result<std::vector<std::string>> list = manager.ListCheckpoints();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().size(), 2u);
  EXPECT_NE(list.value()[0].find("ckpt-000000000003"), std::string::npos);
  EXPECT_NE(list.value()[1].find("ckpt-000000000004"), std::string::npos);
  // Pruned files are really gone.
  EXPECT_FALSE(io::FileExists(dir + "/ckpt-000000000001.ckpt"));
  EXPECT_FALSE(io::FileExists(dir + "/ckpt-000000000002.ckpt"));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, RestoreLatestWithoutManifestIsNotFound) {
  const std::string dir = MakeTempDir("nomanifest");
  nn::Linear model(3, 2);
  Sgd opt(model.Parameters(), 0.1f);
  TrainProgress progress;
  CheckpointManager manager(dir, 2);
  const Status st = manager.RestoreLatest(&model, &opt, &progress);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, OptimizerTypeMismatchIsRejected) {
  const std::string dir = MakeTempDir("opttype");
  nn::Linear model(3, 2);
  Adam adam(model.Parameters(), 0.1f);
  CheckpointManager manager(dir, 2);
  ASSERT_TRUE(manager.Save(model, adam, MakeProgress(1)).ok());

  Sgd sgd(model.Parameters(), 0.1f);
  TrainProgress progress;
  const Status st = manager.RestoreLatest(&model, &sgd, &progress);
  EXPECT_FALSE(st.ok());
  std::filesystem::remove_all(dir);
}

// -- Kill-and-resume bitwise equality ----------------------------------------

data::DatasetSplits SmallSplits() {
  data::TimeSeries ts = data::MakeDataset("etth1", 0.07, 11).value();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  return data::MakeSplits(ts, cfg);
}

TrainConfig ResumeBaseConfig() {
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 8;
  config.learning_rate = 5e-3f;
  config.lr_decay = 0.5f;  // Exercise the decayed-LR restore path too.
  config.patience = 10;
  config.max_train_batches = 6;
  config.max_eval_batches = 3;
  config.checkpoint_every_n_steps = 4;
  config.checkpoint_keep_last = 3;
  return config;
}

void ExpectFitResultsIdentical(const FitResult& a, const FitResult& b) {
  EXPECT_EQ(a.epochs_run, b.epochs_run);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
  EXPECT_EQ(a.best_val_mse, b.best_val_mse);
  ASSERT_EQ(a.train_losses.size(), b.train_losses.size());
  for (size_t i = 0; i < a.train_losses.size(); ++i) {
    EXPECT_EQ(a.train_losses[i], b.train_losses[i]) << "epoch " << i;
  }
  ASSERT_EQ(a.val_mses.size(), b.val_mses.size());
  for (size_t i = 0; i < a.val_mses.size(); ++i) {
    EXPECT_EQ(a.val_mses[i], b.val_mses[i]) << "epoch " << i;
  }
}

void RunKillAndResume(TrainConfig base, int64_t abort_step,
                      const std::string& tag) {
  const std::string dir_clean = MakeTempDir(tag + "_clean");
  const std::string dir_crash = MakeTempDir(tag + "_crash");
  data::DatasetSplits splits = SmallSplits();

  // Reference: the uninterrupted run (checkpointing on, never restored).
  SeedGlobalRng(77);
  models::GruForecaster clean(splits.train.config(), splits.train.dims(), 8, 1);
  TrainConfig c1 = base;
  c1.checkpoint_dir = dir_clean;
  const FitResult r1 = Trainer(c1).Fit(&clean, splits.train, splits.val);

  // Crash: identical run killed mid-flight after `abort_step` steps.
  SeedGlobalRng(77);
  models::GruForecaster crashed(splits.train.config(), splits.train.dims(), 8,
                                1);
  TrainConfig c2 = base;
  c2.checkpoint_dir = dir_crash;
  c2.debug_abort_after_steps = abort_step;
  Trainer(c2).Fit(&crashed, splits.train, splits.val);

  // Resume into a fresh process-equivalent: newly constructed model, same
  // checkpoint directory.
  SeedGlobalRng(77);
  models::GruForecaster resumed(splits.train.config(), splits.train.dims(), 8,
                                1);
  TrainConfig c3 = base;
  c3.checkpoint_dir = dir_crash;
  const FitResult r2 = Trainer(c3).Fit(&resumed, splits.train, splits.val);

  EXPECT_TRUE(r2.resumed);
  EXPECT_FALSE(r1.resumed);
  ExpectFitResultsIdentical(r1, r2);
  ExpectParamsBitwiseEqual(clean, resumed);

  std::filesystem::remove_all(dir_clean);
  std::filesystem::remove_all(dir_crash);
}

TEST(ResumeTest, KillAfterEpochBoundaryResumesBitwiseIdentical) {
  // Abort at step 7: the freshest checkpoint is the epoch-0 boundary write.
  RunKillAndResume(ResumeBaseConfig(), /*abort_step=*/7, "boundary");
}

TEST(ResumeTest, KillMidEpochResumesBitwiseIdentical) {
  // No epoch-boundary checkpoints: the resume lands mid-epoch at step 4 and
  // must re-shuffle from the saved RNG state and skip consumed batches.
  TrainConfig base = ResumeBaseConfig();
  base.checkpoint_every_n_epochs = 0;
  RunKillAndResume(base, /*abort_step=*/7, "midepoch");
}

TEST(ResumeTest, ResumeOfFinishedRunIsIdempotent) {
  const std::string dir = MakeTempDir("finished");
  data::DatasetSplits splits = SmallSplits();
  TrainConfig config = ResumeBaseConfig();
  config.checkpoint_dir = dir;

  SeedGlobalRng(77);
  models::GruForecaster model(splits.train.config(), splits.train.dims(), 8, 1);
  const FitResult r1 = Trainer(config).Fit(&model, splits.train, splits.val);

  SeedGlobalRng(77);
  models::GruForecaster again(splits.train.config(), splits.train.dims(), 8, 1);
  const FitResult r2 = Trainer(config).Fit(&again, splits.train, splits.val);
  EXPECT_TRUE(r2.resumed);
  ExpectFitResultsIdentical(r1, r2);
  ExpectParamsBitwiseEqual(model, again);
  std::filesystem::remove_all(dir);
}

// -- Non-finite loss recovery ------------------------------------------------

/// GRU whose Loss turns NaN on the given (0-based) global step indices.
class NanInjectingGru : public models::GruForecaster {
 public:
  NanInjectingGru(data::WindowConfig window, int64_t dims,
                  std::set<int64_t> nan_steps)
      : GruForecaster(window, dims, 8, 1), nan_steps_(std::move(nan_steps)) {}

  Tensor Loss(const data::Batch& batch) override {
    Tensor base = GruForecaster::Loss(batch);
    const int64_t step = step_++;
    if (nan_steps_.count(step) > 0) {
      return MulScalar(base, std::numeric_limits<float>::quiet_NaN());
    }
    return base;
  }

 private:
  std::set<int64_t> nan_steps_;
  int64_t step_ = 0;
};

bool AllParamsFinite(const nn::Module& module) {
  for (const Tensor& p : module.Parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) {
      if (!std::isfinite(p.data()[i])) return false;
    }
  }
  return true;
}

TEST(NonFiniteTest, NanStepsAreSkippedAndCounted) {
  data::DatasetSplits splits = SmallSplits();
  TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.learning_rate = 5e-3f;
  config.patience = 10;
  config.max_train_batches = 6;
  config.max_eval_batches = 3;

  SeedGlobalRng(31);
  models::GruForecaster clean(splits.train.config(), splits.train.dims(), 8, 1);
  const FitResult clean_result =
      Trainer(config).Fit(&clean, splits.train, splits.val);

  metrics::Counter& counter =
      metrics::Registry::Global().GetCounter("train.nonfinite_steps");
  const int64_t before = counter.value();
  SeedGlobalRng(31);
  NanInjectingGru poisoned(splits.train.config(), splits.train.dims(), {2, 9});
  const FitResult result =
      Trainer(config).Fit(&poisoned, splits.train, splits.val);

  EXPECT_EQ(result.nonfinite_steps, 2);
  EXPECT_EQ(counter.value() - before, 2);
  EXPECT_TRUE(AllParamsFinite(poisoned));
  for (double loss : result.train_losses) EXPECT_TRUE(std::isfinite(loss));
  for (double mse : result.val_mses) EXPECT_TRUE(std::isfinite(mse));
  // Same early-stopping behaviour as the clean run.
  EXPECT_EQ(result.epochs_run, clean_result.epochs_run);
  EXPECT_EQ(result.early_stopped, clean_result.early_stopped);
  EXPECT_EQ(clean_result.nonfinite_steps, 0);
}

TEST(NonFiniteTest, ConsecutiveNanStepsTriggerLastGoodRestore) {
  data::DatasetSplits splits = SmallSplits();
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.learning_rate = 5e-3f;
  config.max_train_batches = 8;
  config.max_eval_batches = 3;
  config.nonfinite_patience = 3;

  metrics::Counter& restores =
      metrics::Registry::Global().GetCounter("train.nonfinite_restores");
  const int64_t before = restores.value();
  SeedGlobalRng(31);
  NanInjectingGru poisoned(splits.train.config(), splits.train.dims(),
                           {2, 3, 4});
  const FitResult result =
      Trainer(config).Fit(&poisoned, splits.train, splits.val);

  EXPECT_EQ(result.nonfinite_steps, 3);
  EXPECT_EQ(restores.value() - before, 1);
  EXPECT_TRUE(AllParamsFinite(poisoned));
  EXPECT_EQ(result.epochs_run, 1);
}

}  // namespace
}  // namespace conformer::train
