// Property-based tests: algebraic identities and invariants checked across
// parameter grids (shapes, dims, kernel sizes), complementing the
// example-based unit tests.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "attention/multi_head_attention.h"
#include "core/series_decomposition.h"
#include "data/scaler.h"
#include "nn/conv1d.h"
#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "fft/fft.h"
#include "nn/gru.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace conformer {
namespace {

// -- tensor algebra over a shape grid ------------------------------------------

class ShapeGridTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeGridTest, AddIsCommutative) {
  Rng rng(1);
  Tensor a = Tensor::Randn(GetParam(), &rng);
  Tensor b = Tensor::Randn(GetParam(), &rng);
  Tensor ab = Add(a, b);
  Tensor ba = Add(b, a);
  for (int64_t i = 0; i < ab.numel(); ++i) {
    EXPECT_EQ(ab.data()[i], ba.data()[i]);
  }
}

TEST_P(ShapeGridTest, MulDistributesOverAdd) {
  Rng rng(2);
  Tensor a = Tensor::Randn(GetParam(), &rng);
  Tensor b = Tensor::Randn(GetParam(), &rng);
  Tensor c = Tensor::Randn(GetParam(), &rng);
  Tensor left = Mul(a, Add(b, c));
  Tensor right = Add(Mul(a, b), Mul(a, c));
  for (int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-4);
  }
}

TEST_P(ShapeGridTest, ExpLogRoundTrip) {
  Rng rng(3);
  Tensor a = Tensor::Rand(GetParam(), 0.1f, 3.0f, &rng);
  Tensor round = Exp(Log(a));
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(round.data()[i], a.data()[i], 1e-4);
  }
}

TEST_P(ShapeGridTest, SumEqualsMeanTimesCount) {
  Rng rng(4);
  Tensor a = Tensor::Randn(GetParam(), &rng);
  EXPECT_NEAR(Sum(a).item(), Mean(a).item() * a.numel(), 1e-2);
}

TEST_P(ShapeGridTest, ReshapeFlattenPreservesOrder) {
  Rng rng(5);
  Tensor a = Tensor::Randn(GetParam(), &rng);
  Tensor flat = Reshape(a, {-1});
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(flat.data()[i], a.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeGridTest,
                         ::testing::Values(Shape{4}, Shape{3, 5}, Shape{2, 3, 4},
                                           Shape{1, 7}, Shape{2, 1, 6},
                                           Shape{5, 2, 2, 2}));

// -- transpose / permute involutions ---------------------------------------------

class PermuteTest : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(PermuteTest, TransposeIsInvolution) {
  auto [d0, d1] = GetParam();
  Rng rng(6);
  Tensor a = Tensor::Randn({3, 4, 5}, &rng);
  Tensor round = Transpose(Transpose(a, d0, d1), d0, d1);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(round.data()[i], a.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(DimPairs, PermuteTest,
                         ::testing::Values(std::make_tuple(0, 1),
                                           std::make_tuple(0, 2),
                                           std::make_tuple(1, 2)));

// -- softmax invariants over dims -----------------------------------------------

class SoftmaxDimTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SoftmaxDimTest, ShiftInvariance) {
  // softmax(x + c) == softmax(x) for per-slice constant c.
  Rng rng(7);
  Tensor a = Tensor::Randn({3, 4, 5}, &rng);
  Tensor shifted = AddScalar(a, 7.5f);
  Tensor sa = Softmax(a, GetParam());
  Tensor sb = Softmax(shifted, GetParam());
  for (int64_t i = 0; i < sa.numel(); ++i) {
    EXPECT_NEAR(sa.data()[i], sb.data()[i], 1e-5);
  }
}

TEST_P(SoftmaxDimTest, OutputsArePositiveAndNormalized) {
  Rng rng(8);
  Tensor a = MulScalar(Tensor::Randn({3, 4, 5}, &rng), 10.0f);
  Tensor s = Softmax(a, GetParam());
  for (int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_GT(s.data()[i], 0.0f);
    EXPECT_LE(s.data()[i], 1.0f);
  }
  Tensor total = Sum(s, {GetParam()});
  for (int64_t i = 0; i < total.numel(); ++i) {
    EXPECT_NEAR(total.data()[i], 1.0f, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SoftmaxDimTest, ::testing::Values(0, 1, 2, -1));

// -- matmul over a size grid ---------------------------------------------------------

class MatMulSizeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(MatMulSizeTest, IdentityIsNeutral) {
  auto [m, k, n] = GetParam();
  (void)n;
  Rng rng(9);
  Tensor a = Tensor::Randn({m, k}, &rng);
  Tensor out = MatMul(a, Tensor::Eye(k));
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(out.data()[i], a.data()[i], 1e-5);
  }
}

TEST_P(MatMulSizeTest, TransposeIdentity) {
  // (A B)^T == B^T A^T.
  auto [m, k, n] = GetParam();
  Rng rng(10);
  Tensor a = Tensor::Randn({m, k}, &rng);
  Tensor b = Tensor::Randn({k, n}, &rng);
  Tensor left = Transpose(MatMul(a, b), 0, 1);
  Tensor right = MatMul(Transpose(b, 0, 1), Transpose(a, 0, 1));
  for (int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulSizeTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 3),
                                           std::make_tuple(8, 8, 8)));

// -- FFT Parseval over lengths -----------------------------------------------------

class FftLengthTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(FftLengthTest, ParsevalHolds) {
  const int64_t n = GetParam();
  Rng rng(11);
  std::vector<std::complex<double>> signal(n);
  double time_energy = 0.0;
  for (auto& x : signal) {
    x = {rng.Normal(), rng.Normal()};
    time_energy += std::norm(x);
  }
  fft::Transform(&signal, false);
  double freq_energy = 0.0;
  for (const auto& x : signal) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-6 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLengthTest,
                         ::testing::Values(2, 8, 64, 256, 1024));

// -- series decomposition over kernel widths -------------------------------------------

class DecompKernelTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DecompKernelTest, ReconstructionIsExact) {
  Rng rng(12);
  Tensor x = Tensor::Randn({2, 30, 3}, &rng);
  core::Decomposition d = core::DecomposeSeries(x, GetParam());
  Tensor sum = Add(d.trend, d.seasonal);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(sum.data()[i], x.data()[i], 1e-5);
  }
}

TEST_P(DecompKernelTest, TrendIsSmootherThanInput) {
  // Total variation of the trend never exceeds the input's.
  Rng rng(13);
  Tensor x = Tensor::Randn({1, 40, 1}, &rng);
  core::Decomposition d = core::DecomposeSeries(x, GetParam());
  auto total_variation = [](const Tensor& t) {
    double tv = 0.0;
    for (int64_t i = 1; i < t.size(1); ++i) {
      tv += std::fabs(t.at({0, i, 0}) - t.at({0, i - 1, 0}));
    }
    return tv;
  };
  if (GetParam() > 1) {
    EXPECT_LE(total_variation(d.trend), total_variation(x) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, DecompKernelTest,
                         ::testing::Values(1, 3, 5, 13, 25, 99));

// -- scaler round trip over dimensionalities ---------------------------------------------

class ScalerDimsTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ScalerDimsTest, TransformInverseIsIdentity) {
  const int64_t dims = GetParam();
  data::SyntheticConfig config;
  config.dims = dims;
  config.points = 200;
  config.seasonal = {{24, 1.0}};
  config.seed = 14;
  data::TimeSeries series = data::GenerateSynthetic(config);
  data::StandardScaler scaler;
  scaler.Fit(series);
  data::TimeSeries scaled = scaler.Transform(series);
  for (int64_t i = 0; i < 50; ++i) {
    for (int64_t d = 0; d < dims; ++d) {
      EXPECT_NEAR(scaler.InverseValue(scaled.value(i, d), d),
                  series.value(i, d), 1e-2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ScalerDimsTest, ::testing::Values(1, 2, 7, 21));

// -- window dataset over config grid ------------------------------------------------------

struct WindowCase {
  int64_t input;
  int64_t label;
  int64_t pred;
};

class WindowGridTest : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowGridTest, EverySampleAlignsWithRawSeries) {
  const WindowCase wc = GetParam();
  data::SyntheticConfig config;
  config.dims = 2;
  config.points = 120;
  config.seed = 15;
  data::TimeSeries series = data::GenerateSynthetic(config);
  data::WindowDataset ds(series,
                         {.input_len = wc.input, .label_len = wc.label,
                          .pred_len = wc.pred});
  ASSERT_GT(ds.size(), 0);
  for (int64_t idx : {int64_t{0}, ds.size() / 2, ds.size() - 1}) {
    data::Batch b = ds.GetBatch({idx});
    // x starts at row idx; y starts at idx + input - label.
    EXPECT_EQ(b.x.at({0, 0, 0}), series.value(idx, 0));
    EXPECT_EQ(b.y.at({0, 0, 1}), series.value(idx + wc.input - wc.label, 1));
    const int64_t last = idx + wc.input + wc.pred - 1;
    EXPECT_EQ(b.y.at({0, wc.label + wc.pred - 1, 0}), series.value(last, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, WindowGridTest,
                         ::testing::Values(WindowCase{8, 0, 4},
                                           WindowCase{16, 8, 8},
                                           WindowCase{24, 24, 12},
                                           WindowCase{48, 12, 48}));

// -- multi-head attention over a (heads, length) grid --------------------------------

class MhaGridTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(MhaGridTest, ShapePreservedAndFinite) {
  auto [heads, length] = GetParam();
  attention::MultiHeadAttention mha(16, heads,
                                    attention::AttentionKind::kSlidingWindow,
                                    attention::AttentionConfig{.window = 2});
  Rng rng(20);
  Tensor x = Tensor::Randn({2, length, 16}, &rng);
  NoGradGuard guard;
  Tensor out = mha.Forward(x);
  EXPECT_EQ(out.shape(), (Shape{2, length, 16}));
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
}

TEST_P(MhaGridTest, BatchElementsIndependent) {
  auto [heads, length] = GetParam();
  attention::MultiHeadAttention mha(8, heads > 4 ? 4 : heads,
                                    attention::AttentionKind::kFull);
  Rng rng(21);
  Tensor a = Tensor::Randn({1, length, 8}, &rng);
  Tensor b = Tensor::Randn({1, length, 8}, &rng);
  NoGradGuard guard;
  Tensor out_a = mha.Forward(a);
  Tensor joint = mha.Forward(Concat({a, b}, 0));
  for (int64_t t = 0; t < length; ++t) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(out_a.at({0, t, j}), joint.at({0, t, j}), 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, MhaGridTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(4, 9, 16)));

// -- dilated convolution grid -----------------------------------------------------

class DilationTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DilationTest, SamePaddingPreservesLength) {
  const int64_t dilation = GetParam();
  nn::Conv1dLayer conv(2, 3, /*kernel=*/3, /*padding=*/dilation,
                       PadMode::kReplicate, /*bias=*/true, dilation);
  Tensor out = conv.Forward(Tensor::Randn({1, 2, 20}));
  EXPECT_EQ(out.shape(), (Shape{1, 3, 20}));
}

INSTANTIATE_TEST_SUITE_P(Dilations, DilationTest, ::testing::Values(1, 2, 4));

// -- GRU batch invariance --------------------------------------------------------------------

TEST(GruPropertyTest, BatchElementsAreIndependent) {
  nn::Gru gru(2, 4, 1);
  Rng rng(16);
  Tensor a = Tensor::Randn({1, 6, 2}, &rng);
  Tensor b = Tensor::Randn({1, 6, 2}, &rng);
  Tensor joint = Concat({a, b}, 0);
  NoGradGuard guard;
  Tensor out_a = gru.Forward(a).output;
  Tensor out_joint = gru.Forward(joint).output;
  for (int64_t t = 0; t < 6; ++t) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(out_a.at({0, t, j}), out_joint.at({0, t, j}), 1e-6);
    }
  }
}

TEST(GruPropertyTest, PrecomputedPathMatchesStepPath) {
  // Gru::Forward uses InputGates for layer 0; a 2-layer GRU uses Step for
  // layer 1. Both must agree with a manual unrolled Step loop.
  nn::GruCell cell(3, 4);
  Rng rng(17);
  Tensor x = Tensor::Randn({2, 5, 3}, &rng);
  NoGradGuard guard;
  Tensor gates = cell.InputGates(x);
  Tensor h1 = Tensor::Zeros({2, 4});
  Tensor h2 = Tensor::Zeros({2, 4});
  for (int64_t t = 0; t < 5; ++t) {
    Tensor xt = Squeeze(Slice(x, 1, t, t + 1), 1);
    Tensor gt = Squeeze(Slice(gates, 1, t, t + 1), 1);
    h1 = cell.Step(xt, h1);
    h2 = cell.StepPrecomputed(gt, h2);
    for (int64_t i = 0; i < h1.numel(); ++i) {
      EXPECT_NEAR(h1.data()[i], h2.data()[i], 1e-5) << "t=" << t;
    }
  }
}

// -- broadcasting kernels vs a naive reference -----------------------------------------------

// Reference broadcaster: maps a multi-index of `to` onto the flat index of
// `from` by right-aligning the ranks and clamping size-1 dims to 0. This is
// the definition BroadcastStrides must reproduce via precomputed strides.
int64_t ReferenceBroadcastIndex(const Shape& from, const Shape& to,
                                const std::vector<int64_t>& to_index) {
  const int64_t offset =
      static_cast<int64_t>(to.size()) - static_cast<int64_t>(from.size());
  int64_t flat = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(from.size()); ++i) {
    const int64_t idx = from[i] == 1 ? 0 : to_index[i + offset];
    flat = flat * from[i] + idx;
  }
  return flat;
}

// Derives a random `from` shape that broadcasts to `to`: degrade dims to 1
// and/or drop leading dims.
Shape RandomBroadcastableFrom(const Shape& to, Rng* rng) {
  const int64_t drop = rng->UniformInt(static_cast<int64_t>(to.size()) + 1);
  Shape from(to.begin() + drop, to.end());
  for (int64_t& d : from) {
    if (rng->UniformInt(3) == 0) d = 1;
  }
  return from;
}

TEST(BroadcastPropertyTest, StridesMatchNaiveReferenceOnRandomShapes) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t rank = 1 + rng.UniformInt(4);
    Shape to(rank);
    for (int64_t& d : to) d = 1 + rng.UniformInt(5);
    const Shape from = RandomBroadcastableFrom(to, &rng);

    const std::vector<int64_t> strides = kernels::BroadcastStrides(from, to);
    std::vector<int64_t> index(rank, 0);
    const int64_t n = NumElements(to);
    for (int64_t i = 0; i < n; ++i) {
      int64_t via_strides = 0;
      for (int64_t d = 0; d < rank; ++d) via_strides += index[d] * strides[d];
      EXPECT_EQ(via_strides, ReferenceBroadcastIndex(from, to, index))
          << "trial " << trial << " from=" << ShapeToString(from)
          << " to=" << ShapeToString(to) << " at flat " << i;
      for (int64_t d = rank - 1; d >= 0; --d) {
        if (++index[d] < to[d]) break;
        index[d] = 0;
      }
    }
  }
}

TEST(BroadcastPropertyTest, BroadcastShapeIsSymmetricAndAbsorbing) {
  Rng rng(100);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t rank = 1 + rng.UniformInt(4);
    Shape out(rank);
    for (int64_t& d : out) d = 1 + rng.UniformInt(5);
    const Shape a = RandomBroadcastableFrom(out, &rng);
    const Shape b = RandomBroadcastableFrom(out, &rng);

    const Shape ab = kernels::BroadcastShape(a, b);
    EXPECT_EQ(ab, kernels::BroadcastShape(b, a)) << "trial " << trial;
    // Each input broadcasts to the result, and the result absorbs itself.
    EXPECT_EQ(kernels::BroadcastShape(a, ab), ab);
    EXPECT_EQ(kernels::BroadcastShape(ab, ab), ab);
    // Identity: a shape broadcast with itself is unchanged.
    EXPECT_EQ(kernels::BroadcastShape(a, a), a);
  }
}

TEST(BroadcastPropertyTest, BroadcastBinaryGathersLikeReference) {
  // Round-trip through the real kernel: f(x, y) = x must reproduce exactly
  // the reference gather of `a`, f(x, y) = y that of `b`.
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t rank = 1 + rng.UniformInt(3);
    Shape to(rank);
    for (int64_t& d : to) d = 1 + rng.UniformInt(4);
    const Shape a_shape = RandomBroadcastableFrom(to, &rng);
    const Shape b_shape = RandomBroadcastableFrom(to, &rng);
    const Shape out_shape = kernels::BroadcastShape(a_shape, b_shape);

    Tensor a = Tensor::Randn(a_shape, &rng);
    Tensor b = Tensor::Randn(b_shape, &rng);
    const int64_t n = NumElements(out_shape);
    std::vector<float> picked_a(n);
    std::vector<float> picked_b(n);
    kernels::BroadcastBinary(a.data(), a_shape, b.data(), b_shape,
                             picked_a.data(), out_shape,
                             [](float x, float) { return x; });
    kernels::BroadcastBinary(a.data(), a_shape, b.data(), b_shape,
                             picked_b.data(), out_shape,
                             [](float, float y) { return y; });

    const int64_t out_rank = static_cast<int64_t>(out_shape.size());
    std::vector<int64_t> index(out_rank, 0);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(picked_a[i],
                a.data()[ReferenceBroadcastIndex(a_shape, out_shape, index)])
          << "trial " << trial << " flat " << i;
      EXPECT_EQ(picked_b[i],
                b.data()[ReferenceBroadcastIndex(b_shape, out_shape, index)])
          << "trial " << trial << " flat " << i;
      for (int64_t d = out_rank - 1; d >= 0; --d) {
        if (++index[d] < out_shape[d]) break;
        index[d] = 0;
      }
    }
  }
}

}  // namespace
}  // namespace conformer
