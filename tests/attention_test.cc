// Attention mechanisms: shape contracts, equivalences (window == full when
// the window covers everything), masking, sparsity semantics, gradients,
// and the linear-vs-quadratic memory behaviour Fig. 5 relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "attention/attention.h"
#include "attention/multi_head_attention.h"
#include "tensor/alloc_stats.h"
#include "tensor/gradcheck.h"

namespace conformer::attention {
namespace {

Tensor RandTensor(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(shape, &rng);
}

class AttentionKindTest : public ::testing::TestWithParam<AttentionKind> {};

TEST_P(AttentionKindTest, SelfAttentionShapeContract) {
  AttentionConfig config;
  config.lsh_chunk = 4;
  auto mech = MakeAttention(GetParam(), config);
  Tensor q = RandTensor({2, 12, 8}, 1);
  Tensor k = RandTensor({2, 12, 8}, 2);
  Tensor v = RandTensor({2, 12, 8}, 3);
  Tensor out = mech->Forward(q, k, v, /*causal=*/false);
  EXPECT_EQ(out.shape(), (Shape{2, 12, 8}));
}

TEST_P(AttentionKindTest, OutputIsFiniteOnLargeInputs) {
  AttentionConfig config;
  config.lsh_chunk = 4;
  auto mech = MakeAttention(GetParam(), config);
  Tensor q = MulScalar(RandTensor({1, 16, 4}, 4), 30.0f);
  Tensor out = mech->Forward(q, q, q, false);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
}

TEST_P(AttentionKindTest, GradientReachesAllInputs) {
  AttentionConfig config;
  config.lsh_chunk = 4;
  auto mech = MakeAttention(GetParam(), config);
  Tensor q = RandTensor({1, 8, 4}, 5).set_requires_grad(true);
  Tensor k = RandTensor({1, 8, 4}, 6).set_requires_grad(true);
  Tensor v = RandTensor({1, 8, 4}, 7).set_requires_grad(true);
  Sum(mech->Forward(q, k, v, false)).Backward();
  // Values always receive gradient; q/k do for every mechanism here too.
  EXPECT_TRUE(v.has_grad());
  EXPECT_TRUE(q.has_grad());
  EXPECT_TRUE(k.has_grad());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AttentionKindTest,
    ::testing::Values(AttentionKind::kFull, AttentionKind::kSlidingWindow,
                      AttentionKind::kProbSparse, AttentionKind::kLogSparse,
                      AttentionKind::kLsh, AttentionKind::kAutoCorrelation),
    [](const ::testing::TestParamInfo<AttentionKind>& info) {
      return std::string(AttentionKindName(info.param));
    });

// -- full attention ---------------------------------------------------------

TEST(FullAttentionTest, UniformWhenQueriesAreZero) {
  auto mech = MakeAttention(AttentionKind::kFull, {});
  Tensor q = Tensor::Zeros({1, 3, 2});
  Tensor k = RandTensor({1, 3, 2}, 8);
  Tensor v = Tensor::FromVector({1, 1, 2, 2, 3, 3}, {1, 3, 2});
  Tensor out = mech->Forward(q, k, v, false);
  // Zero queries give uniform weights: every row is mean(V) = (2, 2).
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(out.at({0, i, 0}), 2.0f, 1e-5);
  }
}

TEST(FullAttentionTest, CausalMaskBlocksFuture) {
  auto mech = MakeAttention(AttentionKind::kFull, {});
  Tensor q = RandTensor({1, 4, 2}, 9);
  Tensor k = RandTensor({1, 4, 2}, 10);
  Tensor v = RandTensor({1, 4, 2}, 11).set_requires_grad(true);
  // Gradient of the FIRST query's output must not touch future values.
  Tensor out = mech->Forward(q, k, v, /*causal=*/true);
  Sum(Slice(out, 1, 0, 1)).Backward();
  Tensor g = v.grad();
  for (int64_t t = 1; t < 4; ++t) {
    for (int64_t d = 0; d < 2; ++d) {
      EXPECT_NEAR(g.at({0, t, d}), 0.0f, 1e-6) << "future leak at t=" << t;
    }
  }
}

TEST(FullAttentionTest, CrossAttentionShapes) {
  auto mech = MakeAttention(AttentionKind::kFull, {});
  Tensor q = RandTensor({2, 5, 4}, 12);
  Tensor k = RandTensor({2, 9, 4}, 13);
  Tensor v = RandTensor({2, 9, 4}, 14);
  EXPECT_EQ(mech->Forward(q, k, v, false).shape(), (Shape{2, 5, 4}));
}

TEST(FullAttentionTest, GradCheck) {
  auto mech = MakeAttention(AttentionKind::kFull, {});
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor out = mech->Forward(in[0], in[1], in[2], false);
        return Sum(Mul(out, out));
      },
      {RandTensor({1, 4, 3}, 15).set_requires_grad(true),
       RandTensor({1, 4, 3}, 16).set_requires_grad(true),
       RandTensor({1, 4, 3}, 17).set_requires_grad(true)});
  EXPECT_TRUE(r.passed) << r.message;
}

// -- sliding window ------------------------------------------------------------

TEST(SlidingWindowTest, WideWindowMatchesFullAttention) {
  // Window covering the whole sequence must reproduce full attention.
  auto window = MakeAttention(AttentionKind::kSlidingWindow,
                              AttentionConfig{.window = 64});
  auto full = MakeAttention(AttentionKind::kFull, {});
  Tensor q = RandTensor({2, 6, 4}, 18);
  Tensor k = RandTensor({2, 6, 4}, 19);
  Tensor v = RandTensor({2, 6, 4}, 20);
  Tensor a = window->Forward(q, k, v, false);
  Tensor b = full->Forward(q, k, v, false);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-4);
  }
}

TEST(SlidingWindowTest, LocalityIsEnforced) {
  auto mech = MakeAttention(AttentionKind::kSlidingWindow,
                            AttentionConfig{.window = 2});
  Tensor q = RandTensor({1, 8, 2}, 21);
  Tensor k = RandTensor({1, 8, 2}, 22);
  Tensor v = RandTensor({1, 8, 2}, 23).set_requires_grad(true);
  Tensor out = mech->Forward(q, k, v, false);
  // Query 0's output depends only on positions {0, 1} (w/2 = 1 per side).
  Sum(Slice(out, 1, 0, 1)).Backward();
  Tensor g = v.grad();
  for (int64_t t = 2; t < 8; ++t) {
    for (int64_t d = 0; d < 2; ++d) {
      EXPECT_NEAR(g.at({0, t, d}), 0.0f, 1e-7) << "leak at t=" << t;
    }
  }
}

TEST(SlidingWindowTest, CausalCutsRightNeighbours) {
  auto mech = MakeAttention(AttentionKind::kSlidingWindow,
                            AttentionConfig{.window = 4});
  Tensor q = RandTensor({1, 6, 2}, 24);
  Tensor k = RandTensor({1, 6, 2}, 25);
  Tensor v = RandTensor({1, 6, 2}, 26).set_requires_grad(true);
  Tensor out = mech->Forward(q, k, v, /*causal=*/true);
  Sum(Slice(out, 1, 2, 3)).Backward();  // query at position 2
  Tensor g = v.grad();
  for (int64_t t = 3; t < 6; ++t) {
    EXPECT_NEAR(g.at({0, t, 0}), 0.0f, 1e-7) << "future leak at t=" << t;
  }
}

TEST(SlidingWindowTest, GradCheck) {
  auto mech = MakeAttention(AttentionKind::kSlidingWindow,
                            AttentionConfig{.window = 2});
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor out = mech->Forward(in[0], in[1], in[2], false);
        return Sum(Mul(out, out));
      },
      {RandTensor({1, 5, 2}, 27).set_requires_grad(true),
       RandTensor({1, 5, 2}, 28).set_requires_grad(true),
       RandTensor({1, 5, 2}, 29).set_requires_grad(true)});
  EXPECT_TRUE(r.passed) << r.message;
}

TEST(SlidingWindowTest, LinearMemoryScaling) {
  // Peak allocations of windowed attention grow ~linearly with L while full
  // attention grows quadratically: the Fig. 5 claim, verified coarsely.
  auto window = MakeAttention(AttentionKind::kSlidingWindow,
                              AttentionConfig{.window = 2});
  auto full = MakeAttention(AttentionKind::kFull, {});
  auto peak_of = [](AttentionMechanism* mech, int64_t length) {
    NoGradGuard guard;
    Tensor q = Tensor::Randn({1, length, 8});
    ResetAllocPeak();
    const int64_t before = GetAllocStats().current_bytes;
    Tensor out = mech->Forward(q, q, q, false);
    return GetAllocStats().peak_bytes - before;
  };
  const double full_ratio =
      static_cast<double>(peak_of(full.get(), 256)) / peak_of(full.get(), 64);
  const double window_ratio =
      static_cast<double>(peak_of(window.get(), 256)) /
      peak_of(window.get(), 64);
  EXPECT_GT(full_ratio, 8.0);    // ~16x for quadratic
  EXPECT_LT(window_ratio, 8.0);  // ~4x for linear
}

// -- ProbSparse -----------------------------------------------------------------

TEST(ProbSparseTest, LazyQueriesGetMeanOfValues) {
  AttentionConfig config;
  config.factor = 1;
  auto mech = MakeAttention(AttentionKind::kProbSparse, config);
  // One extreme query (position 0), the rest zeros -> lazy.
  Tensor q = Tensor::Zeros({1, 32, 2});
  q.data()[0] = 10.0f;
  Tensor k = RandTensor({1, 32, 2}, 30);
  Tensor v = RandTensor({1, 32, 2}, 31);
  Tensor out = mech->Forward(q, k, v, false);
  // Mean of V across time.
  for (int64_t d = 0; d < 2; ++d) {
    double mean = 0.0;
    for (int64_t t = 0; t < 32; ++t) mean += v.at({0, t, d});
    mean /= 32.0;
    // Some middle position should be lazy; check position 17.
    EXPECT_NEAR(out.at({0, 17, d}), mean, 1e-4);
  }
}

TEST(ProbSparseTest, ReducesToFewActiveQueries) {
  AttentionConfig config;
  config.factor = 1;
  auto mech = MakeAttention(AttentionKind::kProbSparse, config);
  Tensor q = RandTensor({2, 64, 4}, 32);
  Tensor out = mech->Forward(q, q, q, false);
  EXPECT_EQ(out.shape(), (Shape{2, 64, 4}));
}

// -- LogSparse ----------------------------------------------------------------------

TEST(LogSparseTest, IsCausalByConstruction) {
  auto mech = MakeAttention(AttentionKind::kLogSparse, {});
  Tensor q = RandTensor({1, 8, 2}, 33);
  Tensor k = RandTensor({1, 8, 2}, 34);
  Tensor v = RandTensor({1, 8, 2}, 35).set_requires_grad(true);
  Tensor out = mech->Forward(q, k, v, false);
  Sum(Slice(out, 1, 3, 4)).Backward();  // query 3
  Tensor g = v.grad();
  for (int64_t t = 4; t < 8; ++t) {
    EXPECT_NEAR(g.at({0, t, 0}), 0.0f, 1e-7) << "future leak at t=" << t;
  }
}

TEST(LogSparseTest, AttendsLogarithmicallyManyPositions) {
  auto mech = MakeAttention(AttentionKind::kLogSparse, {});
  Tensor q = RandTensor({1, 16, 2}, 36);
  Tensor k = RandTensor({1, 16, 2}, 37);
  Tensor v = RandTensor({1, 16, 2}, 38).set_requires_grad(true);
  Tensor out = mech->Forward(q, k, v, false);
  Sum(Slice(out, 1, 15, 16)).Backward();  // last query
  Tensor g = v.grad();
  int64_t touched = 0;
  for (int64_t t = 0; t < 16; ++t) {
    if (std::fabs(g.at({0, t, 0})) > 1e-9 || std::fabs(g.at({0, t, 1})) > 1e-9) {
      ++touched;
    }
  }
  // self + sub_len(1) + log taps(5): far fewer than 16.
  EXPECT_LE(touched, 8);
  EXPECT_GE(touched, 3);
}

// -- LSH -------------------------------------------------------------------------------

TEST(LshTest, IdenticalTokensLandTogether) {
  AttentionConfig config;
  config.lsh_chunk = 4;
  auto mech = MakeAttention(AttentionKind::kLsh, config);
  // All tokens identical: output must equal v rows (softmax over equals).
  Tensor q = Tile(RandTensor({1, 1, 4}, 39), {1, 16, 1});
  Tensor v = Tile(RandTensor({1, 1, 4}, 40), {1, 16, 1});
  Tensor out = mech->Forward(q, q, v, false);
  for (int64_t t = 0; t < 16; ++t) {
    for (int64_t d = 0; d < 4; ++d) {
      EXPECT_NEAR(out.at({0, t, d}), v.at({0, t, d}), 1e-4);
    }
  }
}

TEST(LshTest, HandlesLengthNotDivisibleByChunk) {
  AttentionConfig config;
  config.lsh_chunk = 5;
  auto mech = MakeAttention(AttentionKind::kLsh, config);
  Tensor q = RandTensor({2, 13, 4}, 41);
  Tensor out = mech->Forward(q, q, q, false);
  EXPECT_EQ(out.shape(), (Shape{2, 13, 4}));
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
}

// -- AutoCorrelation -----------------------------------------------------------------------

TEST(AutoCorrelationTest, PeriodicValueAggregatesPeriodically) {
  AttentionConfig config;
  config.factor = 1;
  auto mech = MakeAttention(AttentionKind::kAutoCorrelation, config);
  // Period-8 signal: delay aggregation at the dominant lag keeps the
  // periodic structure intact.
  const int64_t length = 32;
  std::vector<float> values(length * 2);
  for (int64_t t = 0; t < length; ++t) {
    values[t * 2] = std::sin(2.0f * 3.14159265f * t / 8.0f);
    values[t * 2 + 1] = std::cos(2.0f * 3.14159265f * t / 8.0f);
  }
  Tensor x = Tensor::FromVector(values, {1, length, 2});
  Tensor out = mech->Forward(x, x, x, false);
  EXPECT_EQ(out.shape(), (Shape{1, length, 2}));
  // The output of a softmax-weighted sum of period-8 rolls of a period-8
  // signal is (nearly) period-8 as well.
  for (int64_t t = 0; t < length - 8; ++t) {
    EXPECT_NEAR(out.at({0, t, 0}), out.at({0, t + 8, 0}), 0.2f);
  }
}

TEST(AutoCorrelationTest, CrossShapesByTruncationAndPadding) {
  AttentionConfig config;
  auto mech = MakeAttention(AttentionKind::kAutoCorrelation, config);
  Tensor q = RandTensor({1, 8, 2}, 42);
  Tensor k_long = RandTensor({1, 12, 2}, 43);
  Tensor v_long = RandTensor({1, 12, 2}, 44);
  EXPECT_EQ(mech->Forward(q, k_long, v_long, false).shape(), (Shape{1, 8, 2}));
  Tensor k_short = RandTensor({1, 5, 2}, 45);
  Tensor v_short = RandTensor({1, 5, 2}, 46);
  EXPECT_EQ(mech->Forward(q, k_short, v_short, false).shape(), (Shape{1, 8, 2}));
}

TEST(SlidingWindowTest, CrossLengthMapsCentresProportionally) {
  // Query sequence of 4 against keys of 8: query i is centred at 2i.
  auto mech = MakeAttention(AttentionKind::kSlidingWindow,
                            AttentionConfig{.window = 2});
  Tensor q = RandTensor({1, 4, 2}, 60);
  Tensor k = RandTensor({1, 8, 2}, 61);
  Tensor v = RandTensor({1, 8, 2}, 62).set_requires_grad(true);
  Tensor out = mech->Forward(q, k, v, false);
  EXPECT_EQ(out.shape(), (Shape{1, 4, 2}));
  Sum(Slice(out, 1, 2, 3)).Backward();  // query 2, centre 4
  Tensor g = v.grad();
  for (int64_t t = 0; t < 8; ++t) {
    const bool in_window = t >= 3 && t <= 5;
    const float mass = std::fabs(g.at({0, t, 0})) + std::fabs(g.at({0, t, 1}));
    if (in_window) {
      EXPECT_GT(mass, 0.0f) << t;
    } else {
      EXPECT_NEAR(mass, 0.0f, 1e-7) << t;
    }
  }
}

TEST(SlidingWindowTest, WidthOneIsSelfCopy) {
  // window = 1 -> half = 0: each query attends only to its own position, so
  // the output equals V exactly (softmax over one element is 1).
  auto mech = MakeAttention(AttentionKind::kSlidingWindow,
                            AttentionConfig{.window = 1});
  Tensor q = RandTensor({2, 6, 3}, 70);
  Tensor k = RandTensor({2, 6, 3}, 71);
  Tensor v = RandTensor({2, 6, 3}, 72);
  Tensor out = mech->Forward(q, k, v, false);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out.data()[i], v.data()[i], 1e-6);
  }
}

// -- gradient checks for the selection-based mechanisms ---------------------
//
// Finite differences are only valid where the function is smooth, so each
// config below saturates the mechanism's discrete selection: every query /
// lag / bucket ends up selected and a +-eps perturbation cannot change the
// chosen set, leaving a purely differentiable aggregation.

void ExpectAttentionGradOk(AttentionKind kind, const AttentionConfig& config,
                           const Shape& shape) {
  auto mech = MakeAttention(kind, config);
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor out = mech->Forward(in[0], in[1], in[2], false);
        return Sum(Mul(out, out));
      },
      {RandTensor(shape, 80).set_requires_grad(true),
       RandTensor(shape, 81).set_requires_grad(true),
       RandTensor(shape, 82).set_requires_grad(true)});
  EXPECT_TRUE(r.passed) << r.message << " (max err " << r.max_abs_error << ")";
}

TEST(ProbSparseTest, GradCheck) {
  // factor=3 with lq=6: u = min(6, 3*ceil(ln 6)) = 6 == lq, so every query
  // is active and the top-u selection is perturbation-proof.
  AttentionConfig config;
  config.factor = 3;
  ExpectAttentionGradOk(AttentionKind::kProbSparse, config, {1, 6, 3});
}

TEST(LogSparseTest, GradCheck) {
  // The tap pattern depends only on positions, never values: always smooth.
  ExpectAttentionGradOk(AttentionKind::kLogSparse, {}, {1, 6, 2});
}

TEST(LshTest, GradCheck) {
  // chunk >= length puts everything in one chunk: each query attends to all
  // keys (self + rolled chunk are the same set), so the output is invariant
  // to the bucket permutation and smooth even if a perturbation flips a
  // bucket assignment.
  AttentionConfig config;
  config.lsh_chunk = 8;
  ExpectAttentionGradOk(AttentionKind::kLsh, config, {1, 8, 3});
}

TEST(AutoCorrelationTest, GradCheck) {
  // factor=3 with length 6 selects k = min(L-1, 3*ceil(ln 6)) lags = all of
  // them, so the top-k lag choice cannot change under perturbation.
  AttentionConfig config;
  config.factor = 3;
  ExpectAttentionGradOk(AttentionKind::kAutoCorrelation, config, {1, 6, 2});
}

TEST(ProbSparseTest, DeterministicGivenSeed) {
  AttentionConfig config;
  config.seed = 5;
  auto a = MakeAttention(AttentionKind::kProbSparse, config);
  auto b = MakeAttention(AttentionKind::kProbSparse, config);
  Tensor q = RandTensor({1, 24, 4}, 63);
  NoGradGuard guard;
  Tensor out_a = a->Forward(q, q, q, false);
  Tensor out_b = b->Forward(q, q, q, false);
  for (int64_t i = 0; i < out_a.numel(); ++i) {
    EXPECT_EQ(out_a.data()[i], out_b.data()[i]);
  }
}

TEST(AutoCorrelationTest, ConstantSeriesIsFixedPoint) {
  // Every roll of a constant series is the series itself, so the weighted
  // aggregation returns it unchanged.
  AttentionConfig config;
  auto mech = MakeAttention(AttentionKind::kAutoCorrelation, config);
  Tensor x = Tensor::Full({1, 16, 3}, 2.5f);
  Tensor out = mech->Forward(x, x, x, false);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out.data()[i], 2.5f, 1e-5);
  }
}

// -- MultiHeadAttention ---------------------------------------------------------------------

TEST(MultiHeadTest, ShapeAndParamCount) {
  MultiHeadAttention mha(16, 4, AttentionKind::kFull);
  Tensor x = RandTensor({2, 10, 16}, 47);
  EXPECT_EQ(mha.Forward(x).shape(), (Shape{2, 10, 16}));
  // 4 projections with weight+bias.
  EXPECT_EQ(mha.Parameters().size(), 8u);
}

TEST(MultiHeadTest, RejectsIndivisibleHeads) {
  EXPECT_DEATH(MultiHeadAttention(10, 3, AttentionKind::kFull), "divisible");
}

TEST(MultiHeadTest, CrossFallbackForSelfOnlyMechanisms) {
  // LSH cannot do cross attention; the wrapper must fall back to full.
  MultiHeadAttention mha(8, 2, AttentionKind::kLsh,
                         AttentionConfig{.lsh_chunk = 4});
  Tensor q = RandTensor({1, 6, 8}, 48);
  Tensor kv = RandTensor({1, 10, 8}, 49);
  Tensor out = mha.Forward(q, kv, kv, false);
  EXPECT_EQ(out.shape(), (Shape{1, 6, 8}));
}

TEST(MultiHeadTest, GradientsReachProjections) {
  MultiHeadAttention mha(8, 2, AttentionKind::kSlidingWindow,
                         AttentionConfig{.window = 2});
  Tensor x = RandTensor({1, 6, 8}, 50);
  Sum(mha.Forward(x)).Backward();
  for (Tensor& p : mha.Parameters()) EXPECT_TRUE(p.has_grad());
}

}  // namespace
}  // namespace conformer::attention
