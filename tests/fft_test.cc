// FFT correctness against the naive DFT oracle, plus auto-correlation
// properties used by the Conformer input representation.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fft/autocorrelation.h"
#include "fft/fft.h"
#include "util/random.h"

namespace conformer::fft {
namespace {

using Complex = std::complex<double>;

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(2), 2);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(96), 128);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024);
}

TEST(FftTest, MatchesNaiveDft) {
  Rng rng(1);
  for (int64_t n : {2, 4, 8, 32, 128}) {
    std::vector<Complex> signal(n);
    for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
    std::vector<Complex> expected = NaiveDft(signal, false);
    std::vector<Complex> actual = signal;
    Transform(&actual, false);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-8) << "n=" << n;
      EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-8) << "n=" << n;
    }
  }
}

TEST(FftTest, InverseMatchesNaive) {
  Rng rng(7);
  std::vector<Complex> signal(16);
  for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
  std::vector<Complex> expected = NaiveDft(signal, true);
  std::vector<Complex> actual = signal;
  Transform(&actual, true);
  for (size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-9);
    EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-9);
  }
}

TEST(FftTest, InverseRoundTrip) {
  Rng rng(2);
  std::vector<Complex> signal(64);
  for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
  std::vector<Complex> copy = signal;
  Transform(&copy, false);
  Transform(&copy, true);
  for (size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), signal[i].real(), 1e-9);
    EXPECT_NEAR(copy[i].imag(), signal[i].imag(), 1e-9);
  }
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  std::vector<Complex> impulse(16, {0.0, 0.0});
  impulse[0] = {1.0, 0.0};
  Transform(&impulse, false);
  for (const auto& x : impulse) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, PureToneHasSingleBin) {
  const int64_t n = 64;
  const int64_t freq = 5;
  std::vector<Complex> tone(n);
  for (int64_t t = 0; t < n; ++t) {
    const double angle = 2.0 * std::numbers::pi * freq * t / n;
    tone[t] = {std::cos(angle), 0.0};
  }
  Transform(&tone, false);
  for (int64_t k = 0; k < n; ++k) {
    const double mag = std::abs(tone[k]);
    if (k == freq || k == n - freq) {
      EXPECT_NEAR(mag, n / 2.0, 1e-8);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-8);
    }
  }
}

TEST(FftTest, LinearityHolds) {
  Rng rng(8);
  std::vector<Complex> a(32), b(32), combo(32);
  for (int64_t i = 0; i < 32; ++i) {
    a[i] = {rng.Normal(), 0.0};
    b[i] = {rng.Normal(), 0.0};
    combo[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  Transform(&a, false);
  Transform(&b, false);
  Transform(&combo, false);
  for (int64_t i = 0; i < 32; ++i) {
    const Complex expected = 2.0 * a[i] + 3.0 * b[i];
    EXPECT_NEAR(combo[i].real(), expected.real(), 1e-8);
    EXPECT_NEAR(combo[i].imag(), expected.imag(), 1e-8);
  }
}

TEST(FftTest, RealFftPadsToPowerOfTwo) {
  std::vector<double> signal(50, 1.0);
  auto spectrum = RealFft(signal);
  EXPECT_EQ(spectrum.size(), 64u);
  EXPECT_NEAR(spectrum[0].real(), 50.0, 1e-9);  // DC = sum
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<Complex> bad(6);
  EXPECT_DEATH(Transform(&bad, false), "power of two");
}

// -- auto-correlation -------------------------------------------------------

TEST(AutoCorrTest, LagZeroIsEnergy) {
  std::vector<double> signal = {1.0, -2.0, 3.0, 0.5};
  auto ac = AutoCorrelation(signal);
  EXPECT_NEAR(ac[0], 1.0 + 4.0 + 9.0 + 0.25, 1e-9);
}

TEST(AutoCorrTest, MatchesDirectComputation) {
  Rng rng(3);
  std::vector<double> signal(32);
  for (auto& x : signal) x = rng.Normal();
  auto ac = AutoCorrelation(signal);  // power-of-two path (FFT)
  for (int64_t lag = 0; lag < 32; ++lag) {
    double expected = 0.0;
    for (int64_t t = 0; t < 32; ++t) {
      expected += signal[t] * signal[(t + lag) % 32];
    }
    EXPECT_NEAR(ac[lag], expected, 1e-8) << "lag=" << lag;
  }
}

TEST(AutoCorrTest, NonPowerOfTwoFallbackConsistent) {
  Rng rng(4);
  std::vector<double> signal(30);  // triggers the direct O(n^2) path
  for (auto& x : signal) x = rng.Normal();
  auto ac = AutoCorrelation(signal);
  double expected = 0.0;
  for (int64_t t = 0; t < 30; ++t) expected += signal[t] * signal[(t + 7) % 30];
  EXPECT_NEAR(ac[7], expected, 1e-9);
}

TEST(AutoCorrTest, PeriodicSignalPeaksAtPeriod) {
  const int64_t n = 128;
  const int64_t period = 16;
  std::vector<double> signal(n);
  for (int64_t t = 0; t < n; ++t) {
    signal[t] = std::sin(2.0 * std::numbers::pi * t / period);
  }
  auto ac = AutoCorrelation(signal);
  auto lags = TopKLags(ac, 1);
  EXPECT_EQ(lags[0] % period, 0) << "top lag " << lags[0];
}

TEST(AutoCorrTest, CrossCorrelationOfSelfIsAutoCorrelation) {
  Rng rng(5);
  std::vector<double> a(16);
  for (auto& x : a) x = rng.Normal();
  auto cross = CrossCorrelation(a, a);
  auto ac = AutoCorrelation(a);
  for (int64_t i = 0; i < 16; ++i) EXPECT_NEAR(cross[i], ac[i], 1e-8);
}

TEST(AutoCorrTest, CrossCorrelationFindsShift) {
  const int64_t n = 64;
  Rng rng(6);
  std::vector<double> a(n);
  for (auto& x : a) x = rng.Normal();
  std::vector<double> b(n);
  for (int64_t t = 0; t < n; ++t) b[t] = a[(t + 5) % n];
  auto cross = CrossCorrelation(a, b);
  int64_t best = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (cross[i] > cross[best]) best = i;
  }
  EXPECT_EQ(best, 5);
}

TEST(AutoCorrTest, TopKLagsExcludesZeroAndSorts) {
  std::vector<double> corr = {100.0, 1.0, 9.0, 3.0, 7.0};
  auto lags = TopKLags(corr, 3);
  EXPECT_EQ(lags, (std::vector<int64_t>{2, 4, 3}));
  auto all = TopKLags(corr, 10);  // clamped to n-1
  EXPECT_EQ(all.size(), 4u);
}

}  // namespace
}  // namespace conformer::fft
