// FFT correctness against the naive DFT oracle — at power-of-two lengths
// (radix-2 path) and arbitrary lengths (Bluestein chirp-z path) including
// every benchmark length the paper uses — plus auto-correlation properties
// used by the Conformer input representation, plan-cache accounting, and the
// batched parallel path's bitwise-determinism contract (tsan-labeled).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>

#include "fft/autocorrelation.h"
#include "fft/fft.h"
#include "fft/plan.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace conformer::fft {
namespace {

using Complex = std::complex<double>;

// Relative tolerance for FFT-vs-oracle comparisons: |a - b| <= tol * scale
// with scale = max(1, |b|), so large-energy lags are judged relatively and
// near-zero lags absolutely.
void ExpectNearRel(double actual, double expected, double tol,
                   const std::string& label) {
  const double scale = std::max(1.0, std::fabs(expected));
  EXPECT_NEAR(actual, expected, tol * scale) << label;
}

// O(n^2) circular correlation oracle: out[lag] = sum_t a[(t+lag) % n] * b[t].
std::vector<double> DirectCircularCorrelation(const std::vector<double>& a,
                                              const std::vector<double>& b) {
  const int64_t n = static_cast<int64_t>(a.size());
  std::vector<double> out(n, 0.0);
  for (int64_t lag = 0; lag < n; ++lag) {
    for (int64_t t = 0; t < n; ++t) out[lag] += a[(t + lag) % n] * b[t];
  }
  return out;
}

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(2), 2);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(96), 128);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024);
}

TEST(FftTest, MatchesNaiveDft) {
  Rng rng(1);
  for (int64_t n : {2, 4, 8, 32, 128}) {
    std::vector<Complex> signal(n);
    for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
    std::vector<Complex> expected = NaiveDft(signal, false);
    std::vector<Complex> actual = signal;
    Transform(&actual, false);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-8) << "n=" << n;
      EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-8) << "n=" << n;
    }
  }
}

TEST(FftTest, ArbitraryLengthMatchesNaiveDft) {
  // Non-power-of-two lengths take the Bluestein path; the spectrum must be
  // the exact DFT of the unpadded signal — including the paper's benchmark
  // lengths 96/192/336/720.
  Rng rng(11);
  for (int64_t n : {1, 2, 3, 5, 6, 7, 12, 51, 96, 192, 336, 720}) {
    std::vector<Complex> signal(n);
    for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
    std::vector<Complex> expected = NaiveDft(signal, false);
    std::vector<Complex> actual = signal;
    Transform(&actual, false);
    for (int64_t i = 0; i < n; ++i) {
      ExpectNearRel(actual[i].real(), expected[i].real(), 1e-9,
                    "re n=" + std::to_string(n) + " k=" + std::to_string(i));
      ExpectNearRel(actual[i].imag(), expected[i].imag(), 1e-9,
                    "im n=" + std::to_string(n) + " k=" + std::to_string(i));
    }
  }
}

TEST(FftTest, ArbitraryLengthInverseMatchesNaiveDft) {
  Rng rng(12);
  for (int64_t n : {3, 5, 96, 336}) {
    std::vector<Complex> signal(n);
    for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
    std::vector<Complex> expected = NaiveDft(signal, true);
    std::vector<Complex> actual = signal;
    Transform(&actual, true);
    for (int64_t i = 0; i < n; ++i) {
      ExpectNearRel(actual[i].real(), expected[i].real(), 1e-9, "n=" + std::to_string(n));
      ExpectNearRel(actual[i].imag(), expected[i].imag(), 1e-9, "n=" + std::to_string(n));
    }
  }
}

TEST(FftTest, ArbitraryLengthRoundTrip) {
  Rng rng(13);
  for (int64_t n : {5, 30, 336, 720}) {
    std::vector<Complex> signal(n);
    for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
    std::vector<Complex> copy = signal;
    Transform(&copy, false);
    Transform(&copy, true);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(copy[i].real(), signal[i].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(copy[i].imag(), signal[i].imag(), 1e-9) << "n=" << n;
    }
  }
}

TEST(FftTest, InverseMatchesNaive) {
  Rng rng(7);
  std::vector<Complex> signal(16);
  for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
  std::vector<Complex> expected = NaiveDft(signal, true);
  std::vector<Complex> actual = signal;
  Transform(&actual, true);
  for (size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-9);
    EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-9);
  }
}

TEST(FftTest, InverseRoundTrip) {
  Rng rng(2);
  std::vector<Complex> signal(64);
  for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
  std::vector<Complex> copy = signal;
  Transform(&copy, false);
  Transform(&copy, true);
  for (size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), signal[i].real(), 1e-9);
    EXPECT_NEAR(copy[i].imag(), signal[i].imag(), 1e-9);
  }
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  std::vector<Complex> impulse(16, {0.0, 0.0});
  impulse[0] = {1.0, 0.0};
  Transform(&impulse, false);
  for (const auto& x : impulse) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, PureToneHasSingleBin) {
  const int64_t n = 64;
  const int64_t freq = 5;
  std::vector<Complex> tone(n);
  for (int64_t t = 0; t < n; ++t) {
    const double angle = 2.0 * std::numbers::pi * freq * t / n;
    tone[t] = {std::cos(angle), 0.0};
  }
  Transform(&tone, false);
  for (int64_t k = 0; k < n; ++k) {
    const double mag = std::abs(tone[k]);
    if (k == freq || k == n - freq) {
      EXPECT_NEAR(mag, n / 2.0, 1e-8);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-8);
    }
  }
}

TEST(FftTest, PureToneHasSingleBinAtNonPowerOfTwoLength) {
  // The old RealFft zero-padded 96 to 128, leaking a pure 96-periodic tone
  // across every bin. Bluestein keeps it in exactly one conjugate pair.
  const int64_t n = 96;
  const int64_t freq = 4;
  std::vector<double> tone(n);
  for (int64_t t = 0; t < n; ++t) {
    tone[t] = std::cos(2.0 * std::numbers::pi * freq * t / n);
  }
  auto spectrum = RealFft(tone);
  ASSERT_EQ(spectrum.size(), static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    const double mag = std::abs(spectrum[k]);
    if (k == freq || k == n - freq) {
      EXPECT_NEAR(mag, n / 2.0, 1e-8) << "k=" << k;
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-8) << "k=" << k;
    }
  }
}

TEST(FftTest, LinearityHolds) {
  Rng rng(8);
  std::vector<Complex> a(32), b(32), combo(32);
  for (int64_t i = 0; i < 32; ++i) {
    a[i] = {rng.Normal(), 0.0};
    b[i] = {rng.Normal(), 0.0};
    combo[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  Transform(&a, false);
  Transform(&b, false);
  Transform(&combo, false);
  for (int64_t i = 0; i < 32; ++i) {
    const Complex expected = 2.0 * a[i] + 3.0 * b[i];
    EXPECT_NEAR(combo[i].real(), expected.real(), 1e-8);
    EXPECT_NEAR(combo[i].imag(), expected.imag(), 1e-8);
  }
}

TEST(FftTest, RealFftReturnsExactBinCountForAnyLength) {
  // Contract: exactly signal.size() bins, each the true unpadded DFT
  // coefficient, with Hermitian symmetry X[n-k] = conj(X[k]).
  Rng rng(9);
  for (int64_t n : {1, 2, 5, 50, 96, 720}) {
    std::vector<double> signal(n);
    double sum = 0.0;
    for (auto& x : signal) {
      x = rng.Normal();
      sum += x;
    }
    auto spectrum = RealFft(signal);
    ASSERT_EQ(spectrum.size(), static_cast<size_t>(n)) << "n=" << n;
    ExpectNearRel(spectrum[0].real(), sum, 1e-9, "DC n=" + std::to_string(n));
    EXPECT_NEAR(spectrum[0].imag(), 0.0, 1e-8);
    for (int64_t k = 1; k < n; ++k) {
      EXPECT_NEAR(spectrum[k].real(), spectrum[n - k].real(), 1e-8);
      EXPECT_NEAR(spectrum[k].imag(), -spectrum[n - k].imag(), 1e-8);
    }
  }
}

// -- plan cache -------------------------------------------------------------

TEST(FftPlanTest, CacheCountsHitsAndMisses) {
  ClearPlanCacheForTesting();
  metrics::Counter& hits =
      metrics::Registry::Global().GetCounter("fft.plan_hits");
  metrics::Counter& misses =
      metrics::Registry::Global().GetCounter("fft.plan_misses");
  hits.Reset();
  misses.Reset();

  auto a = GetPlan(336);
  EXPECT_EQ(misses.value(), 1);
  EXPECT_EQ(hits.value(), 0);
  auto b = GetPlan(336);
  EXPECT_EQ(misses.value(), 1);
  EXPECT_EQ(hits.value(), 1);
  EXPECT_EQ(a.get(), b.get()) << "same length must share one plan";
  auto c = GetPlan(1024);
  EXPECT_EQ(misses.value(), 2);
  EXPECT_EQ(PlanCacheSize(), 2);

  // A length-336 correlation uses only the padded 1024-point plan: hit.
  Rng rng(10);
  std::vector<double> signal(336);
  for (auto& x : signal) x = rng.Normal();
  (void)AutoCorrelation(signal);
  EXPECT_EQ(misses.value(), 2);
  EXPECT_GE(hits.value(), 2);
}

TEST(FftPlanTest, PlanTransformMatchesOracleBothPaths) {
  Rng rng(14);
  for (int64_t n : {8, 13}) {  // radix-2 and Bluestein
    FftPlan plan(n);
    EXPECT_EQ(plan.length(), n);
    std::vector<Complex> signal(n);
    for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
    std::vector<Complex> expected = NaiveDft(signal, false);
    std::vector<Complex> actual = signal;
    plan.Forward(actual.data());
    for (int64_t i = 0; i < n; ++i) {
      ExpectNearRel(actual[i].real(), expected[i].real(), 1e-9, "fwd");
      ExpectNearRel(actual[i].imag(), expected[i].imag(), 1e-9, "fwd");
    }
    plan.Inverse(actual.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(actual[i].real(), signal[i].real(), 1e-9);
      EXPECT_NEAR(actual[i].imag(), signal[i].imag(), 1e-9);
    }
  }
}

// -- auto-correlation -------------------------------------------------------

TEST(AutoCorrTest, LagZeroIsEnergy) {
  std::vector<double> signal = {1.0, -2.0, 3.0, 0.5};
  auto ac = AutoCorrelation(signal);
  EXPECT_NEAR(ac[0], 1.0 + 4.0 + 9.0 + 0.25, 1e-9);
}

TEST(AutoCorrTest, MatchesDirectComputation) {
  Rng rng(3);
  std::vector<double> signal(32);
  for (auto& x : signal) x = rng.Normal();
  auto ac = AutoCorrelation(signal);  // power-of-two path (circular FFT)
  auto expected = DirectCircularCorrelation(signal, signal);
  for (int64_t lag = 0; lag < 32; ++lag) {
    EXPECT_NEAR(ac[lag], expected[lag], 1e-8) << "lag=" << lag;
  }
}

TEST(AutoCorrTest, MatchesDirectOracleAtEveryBenchmarkLength) {
  // Exactness of the linear-correlation + wrap-around-fold path at L = 1, 2,
  // 5 and the paper's 96/192/336/720 — the lengths that used to silently
  // degrade to the O(L^2) loop.
  Rng rng(4);
  for (int64_t n : {1, 2, 5, 96, 192, 336, 720}) {
    std::vector<double> signal(n);
    for (auto& x : signal) x = rng.Normal();
    auto ac = AutoCorrelation(signal);
    ASSERT_EQ(ac.size(), static_cast<size_t>(n));
    auto expected = DirectCircularCorrelation(signal, signal);
    for (int64_t lag = 0; lag < n; ++lag) {
      ExpectNearRel(ac[lag], expected[lag], 1e-9,
                    "n=" + std::to_string(n) + " lag=" + std::to_string(lag));
    }
  }
}

TEST(AutoCorrTest, CrossCorrelationMatchesDirectOracleAtAnyLength) {
  Rng rng(15);
  for (int64_t n : {2, 5, 96, 336}) {
    std::vector<double> a(n), b(n);
    for (auto& x : a) x = rng.Normal();
    for (auto& x : b) x = rng.Normal();
    auto cross = CrossCorrelation(a, b);
    auto expected = DirectCircularCorrelation(a, b);
    for (int64_t lag = 0; lag < n; ++lag) {
      ExpectNearRel(cross[lag], expected[lag], 1e-9,
                    "n=" + std::to_string(n) + " lag=" + std::to_string(lag));
    }
  }
}

TEST(AutoCorrTest, PeriodicSignalPeaksAtPeriod) {
  const int64_t n = 128;
  const int64_t period = 16;
  std::vector<double> signal(n);
  for (int64_t t = 0; t < n; ++t) {
    signal[t] = std::sin(2.0 * std::numbers::pi * t / period);
  }
  auto ac = AutoCorrelation(signal);
  auto lags = TopKLags(ac, 1);
  EXPECT_EQ(lags[0] % period, 0) << "top lag " << lags[0];
}

TEST(AutoCorrTest, PeriodicSignalPeaksAtPeriodNonPowerOfTwo) {
  // 336 = 14 daily cycles of an hourly series: the top lag must be a
  // multiple of 24 now that the FFT path covers this length.
  const int64_t n = 336;
  const int64_t period = 24;
  std::vector<double> signal(n);
  for (int64_t t = 0; t < n; ++t) {
    signal[t] = std::sin(2.0 * std::numbers::pi * t / period);
  }
  auto ac = AutoCorrelation(signal);
  auto lags = TopKLags(ac, 1);
  EXPECT_EQ(lags[0] % period, 0) << "top lag " << lags[0];
}

TEST(AutoCorrTest, CrossCorrelationOfSelfIsAutoCorrelation) {
  Rng rng(5);
  for (int64_t n : {16, 30}) {
    std::vector<double> a(n);
    for (auto& x : a) x = rng.Normal();
    auto cross = CrossCorrelation(a, a);
    auto ac = AutoCorrelation(a);
    for (int64_t i = 0; i < n; ++i) EXPECT_NEAR(cross[i], ac[i], 1e-8);
  }
}

TEST(AutoCorrTest, CrossCorrelationFindsShift) {
  const int64_t n = 64;
  Rng rng(6);
  std::vector<double> a(n);
  for (auto& x : a) x = rng.Normal();
  std::vector<double> b(n);
  for (int64_t t = 0; t < n; ++t) b[t] = a[(t + 5) % n];
  auto cross = CrossCorrelation(a, b);
  int64_t best = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (cross[i] > cross[best]) best = i;
  }
  EXPECT_EQ(best, 5);
}

TEST(AutoCorrTest, TopKLagsExcludesZeroAndSorts) {
  std::vector<double> corr = {100.0, 1.0, 9.0, 3.0, 7.0};
  auto lags = TopKLags(corr, 3);
  EXPECT_EQ(lags, (std::vector<int64_t>{2, 4, 3}));
  auto all = TopKLags(corr, 10);  // clamped to n-1
  EXPECT_EQ(all.size(), 4u);
}

TEST(AutoCorrTest, TopKLagsTiesBreakTowardLowerLag) {
  // All four lags tie: the contract pins the order to ascending lag. The
  // pre-fix comparator left tied order to partial_sort's heap internals,
  // which returns {2, 4, 1, 3} for this input on libstdc++.
  std::vector<double> corr = {0.0, 5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(TopKLags(corr, 4), (std::vector<int64_t>{1, 2, 3, 4}));
  // A tie below the top: lags 2 and 4 share 7.0, lower lag first.
  std::vector<double> partial = {100.0, 1.0, 7.0, 3.0, 7.0, 9.0};
  EXPECT_EQ(TopKLags(partial, 3), (std::vector<int64_t>{5, 2, 4}));
}

TEST(AutoCorrTest, TopKLagsClampsOutOfRangeK) {
  std::vector<double> corr = {3.0, 2.0, 1.0};
  // Negative k was undefined behaviour (partial_sort past begin) pre-fix.
  EXPECT_TRUE(TopKLags(corr, -1).empty());
  EXPECT_TRUE(TopKLags(corr, 0).empty());
  EXPECT_EQ(TopKLags(corr, 99), (std::vector<int64_t>{1, 2}));
  EXPECT_TRUE(TopKLags({42.0}, 3).empty());  // No usable lag at n=1.
}

// -- top-k period selection (TimesNet-lite FFT_for_Period audit) -----------

TEST(TopKPeriodsTest, ExcludesDcAndRanksByAmplitude) {
  // Length 24; bins 1..12 usable. DC dominates but must be excluded.
  std::vector<double> amp(13, 0.0);
  amp[0] = 1e6;
  amp[3] = 9.0;   // period 8
  amp[1] = 7.0;   // period 24
  amp[12] = 5.0;  // period 2
  auto periods = TopKPeriods(amp, 24, 3);
  ASSERT_EQ(periods.size(), 3u);
  EXPECT_EQ(periods[0].frequency, 3);
  EXPECT_EQ(periods[0].period, 8);
  EXPECT_EQ(periods[1].frequency, 1);
  EXPECT_EQ(periods[1].period, 24);
  EXPECT_EQ(periods[2].frequency, 12);
  EXPECT_EQ(periods[2].period, 2);
}

TEST(TopKPeriodsTest, DedupesPeriodsCollidingAfterRounding) {
  // Length 16: frequencies 6, 7, 8 all round to period 2 (16/6 = 2, 16/7 =
  // 2, 16/8 = 2). Only the strongest survives; the next distinct period
  // fills the remaining slot.
  std::vector<double> amp(9, 0.0);
  amp[6] = 9.0;
  amp[7] = 8.0;
  amp[8] = 7.0;
  amp[5] = 1.0;  // period 3
  auto periods = TopKPeriods(amp, 16, 2);
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].frequency, 6);
  EXPECT_EQ(periods[0].period, 2);
  EXPECT_EQ(periods[1].frequency, 5);
  EXPECT_EQ(periods[1].period, 3);
}

TEST(TopKPeriodsTest, TiesPreferLowerFrequencyAndKClamps) {
  std::vector<double> amp = {0.0, 4.0, 4.0, 4.0};
  auto periods = TopKPeriods(amp, 8, 99);  // k clamped to the candidates
  ASSERT_EQ(periods.size(), 3u);
  EXPECT_EQ(periods[0].frequency, 1);  // Tie: longer period wins.
  EXPECT_EQ(periods[0].period, 8);
  EXPECT_EQ(periods[1].period, 4);
  EXPECT_EQ(periods[2].period, 2);
  EXPECT_TRUE(TopKPeriods(amp, 8, 0).empty());
  EXPECT_TRUE(TopKPeriods(amp, 8, -2).empty());
  EXPECT_TRUE(TopKPeriods({1.0}, 1, 3).empty());  // DC only.
  // Bins past Nyquist mirror the lower half and are ignored: bin 7 at
  // length 8 must never outrank the in-range bins despite its amplitude.
  std::vector<double> long_amp(8, 0.0);
  long_amp[7] = 100.0;  // Mirrors bin 1 — not a candidate.
  long_amp[2] = 1.0;
  auto nyq = TopKPeriods(long_amp, 8, 8);
  ASSERT_FALSE(nyq.empty());
  EXPECT_EQ(nyq[0].frequency, 2);
  for (const auto& c : nyq) EXPECT_LE(c.frequency, 4);
}

// -- batched auto-correlation (threaded; tsan-labeled suite) ----------------

TEST(AutoCorrBatchTest, MatchesPerRowAutoCorrelationBitwise) {
  Rng rng(16);
  const int64_t count = 7;
  for (int64_t length : {96, 336}) {
    std::vector<double> series(count * length);
    for (auto& x : series) x = rng.Normal();
    auto batch = AutoCorrelationBatch(series, count, length);
    ASSERT_EQ(batch.size(), series.size());
    for (int64_t i = 0; i < count; ++i) {
      std::vector<double> row(series.begin() + i * length,
                              series.begin() + (i + 1) * length);
      auto single = AutoCorrelation(row);
      EXPECT_EQ(std::memcmp(batch.data() + i * length, single.data(),
                            length * sizeof(double)),
                0)
          << "row " << i << " length " << length
          << " differs from the single-series path";
    }
  }
}

TEST(AutoCorrBatchTest, BitwiseIdenticalAcrossThreadCounts) {
  Rng rng(17);
  const int64_t count = 13;
  const int64_t length = 336;
  std::vector<double> series(count * length);
  for (auto& x : series) x = rng.Normal();

  ThreadPool::Global().SetNumThreads(1);
  auto one_thread = AutoCorrelationBatch(series, count, length);
  ThreadPool::Global().SetNumThreads(8);
  auto eight_threads = AutoCorrelationBatch(series, count, length);
  ThreadPool::Global().SetNumThreads(1);

  ASSERT_EQ(one_thread.size(), eight_threads.size());
  EXPECT_EQ(std::memcmp(one_thread.data(), eight_threads.data(),
                        one_thread.size() * sizeof(double)),
            0)
      << "AutoCorrelationBatch must be bitwise identical at any thread count";
}

TEST(AutoCorrBatchTest, EmptyBatchIsNoop) {
  auto out = AutoCorrelationBatch({}, 0, 8);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace conformer::fft
