#!/usr/bin/env python3
"""Exit-code contract tests for tools/compare_bench.py.

Run as: compare_bench_test.py <path-to-compare_bench.py>

Drives the comparator with generated bench JSONs covering both schemas:
identical runs must pass, improvements must pass, regressions beyond the
threshold must fail (and pass again under --warn-only), a coverage drop
below the floor must fail, and malformed input must exit 2.
"""

import json
import os
import subprocess
import sys
import tempfile


def write_json(tmpdir, name, doc):
    path = os.path.join(tmpdir, name)
    with open(path, "w") as f:
        json.dump(doc, f)
    return path


def run(compare, *argv):
    proc = subprocess.run(
        [sys.executable, compare] + list(argv),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    return proc.returncode, proc.stdout.decode()


def main():
    if len(sys.argv) != 2:
        print("usage: compare_bench_test.py <compare_bench.py>")
        return 1
    compare = sys.argv[1]
    failures = []

    def check(label, got, want, output):
        if got != want:
            failures.append(
                "{}: exit {} want {}\n{}".format(label, got, want, output))

    with tempfile.TemporaryDirectory() as tmpdir:
        kernels = {
            "hardware_concurrency": 4,
            "results": [
                {"kernel": "gemm_512", "threads": 1, "ops_per_sec": 100.0},
                {"kernel": "gemm_512", "threads": 4, "ops_per_sec": 300.0},
            ],
        }
        base = write_json(tmpdir, "base.json", kernels)

        # Identical runs pass.
        code, out = run(compare, base, base)
        check("identical", code, 0, out)

        # A 50% throughput drop on one kernel fails at the 10% default.
        degraded = json.loads(json.dumps(kernels))
        degraded["results"][0]["ops_per_sec"] = 50.0
        deg = write_json(tmpdir, "degraded.json", degraded)
        code, out = run(compare, base, deg)
        check("degraded", code, 1, out)

        # ... but --warn-only always exits 0.
        code, out = run(compare, base, deg, "--warn-only")
        check("degraded --warn-only", code, 0, out)

        # ... and a loose threshold tolerates it.
        code, out = run(compare, base, deg, "--threshold", "0.6")
        check("degraded loose threshold", code, 0, out)

        # Improvements never fail.
        improved = json.loads(json.dumps(kernels))
        improved["results"][0]["ops_per_sec"] = 250.0
        imp = write_json(tmpdir, "improved.json", improved)
        code, out = run(compare, base, imp)
        check("improved", code, 0, out)

        # Rows only in the current run are reported as NEW in the summary
        # (one full row per metric, never gated) and do not affect the exit
        # code.
        grown = json.loads(json.dumps(kernels))
        grown["results"].append(
            {"kernel": "gemm_avx2", "threads": 1, "ops_per_sec": 900.0})
        grw = write_json(tmpdir, "grown.json", grown)
        code, out = run(compare, base, grw)
        check("new metric exit code", code, 0, out)
        if "gemm_avx2/t1/ops_per_sec" not in out or "NEW" not in out:
            failures.append(
                "new metric row missing NEW marker:\n{}".format(out))

        # A metric disappearing from the current run fails.
        shrunk = json.loads(json.dumps(kernels))
        shrunk["results"] = shrunk["results"][:1]
        shr = write_json(tmpdir, "shrunk.json", shrunk)
        code, out = run(compare, base, shr)
        check("missing metric", code, 1, out)

        # bench_profile_report schema: coverage below the floor fails even
        # when throughput is unchanged.
        profile = {
            "schema": "conformer.bench_profile.v1",
            "step_coverage": 0.99,
            "throughput": {"train_steps_per_sec": 8.0},
        }
        pbase = write_json(tmpdir, "profile_base.json", profile)
        code, out = run(compare, pbase, pbase)
        check("profile identical", code, 0, out)

        uncovered = dict(profile, step_coverage=0.80)
        punc = write_json(tmpdir, "profile_uncovered.json", uncovered)
        code, out = run(compare, pbase, punc)
        check("coverage below floor", code, 1, out)

        # Malformed input exits 2.
        bad = os.path.join(tmpdir, "bad.json")
        with open(bad, "w") as f:
            f.write("{not json")
        code, out = run(compare, base, bad)
        check("malformed", code, 2, out)

    if failures:
        print("compare_bench_test: {} failure(s)".format(len(failures)))
        for failure in failures:
            print(failure)
        return 1
    print("compare_bench_test: all exit-code contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
