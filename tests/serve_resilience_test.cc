// Serving resilience chaos suite (docs/SERVING.md, "Overload & failure
// policy"). Proves the three containment properties of ISSUE 8 with
// injected faults:
//   (a) a throwing Predict fails only its own batch's futures and the queue
//       serves the next batch successfully (plus the consecutive-failure
//       circuit breaker),
//   (b) requests past their deadline are shed without running the model
//       while within-deadline requests stay bitwise identical to the
//       unloaded path (plus bounded admission),
//   (c) a corrupt / wrong-architecture / injected-mid-swap Reload() is
//       rejected with the old model's outputs bitwise unchanged, while a
//       valid reload swaps with zero failed in-flight requests under
//       concurrent client load.
// Also regression-covers the Shutdown() double-join race and graceful
// Submit()-after-Shutdown(). Labeled tsan+fault; CI runs it under tsan and
// asan at 8 threads.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/linear_forecaster.h"
#include "baselines/registry.h"
#include "data/dataset_registry.h"
#include "data/time_features.h"
#include "serve/batching_queue.h"
#include "serve/fault_injector.h"
#include "serve/inference_session.h"
#include "train/checkpoint.h"
#include "train/trainer.h"
#include "util/metrics.h"

namespace conformer::serve {
namespace {

data::WindowConfig TestWindow() {
  return {.input_len = 24, .label_len = 8, .pred_len = 8};
}

data::DatasetSplits MakeTestSplits() {
  data::TimeSeries series = data::MakeDataset("etth1", 0.05).value();
  return data::MakeSplits(series, TestWindow());
}

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = "/tmp/conformer_resilience_" + tag + "_" +
                          std::to_string(static_cast<int64_t>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b,
                               const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)), 0)
      << what << " differs";
}

bool WaitFor(const std::function<bool()>& pred, int64_t timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

int64_t CounterValue(const std::string& name) {
  return metrics::Registry::Global().GetCounter(name).value();
}

/// RAII: closes the injector's Predict gate on construction, opens it on
/// destruction so a failing ASSERT never leaves a queue drain blocked.
struct GateGuard {
  GateGuard() { FaultInjector::SetPredictGate(true); }
  ~GateGuard() { FaultInjector::SetPredictGate(false); }
  void Open() { FaultInjector::SetPredictGate(false); }
};

/// RAII: uninstalls the fault injector on scope exit.
struct InjectorGuard {
  explicit InjectorGuard(const FaultInjector::Config& config) {
    FaultInjector::Install(config);
  }
  ~InjectorGuard() { FaultInjector::Uninstall(); }
};

/// A registry baseline whose Forward throws on demand — the containment
/// tests' broken model. Counting forward calls proves shed/rejected
/// requests never reach the model.
class FlakyLinear : public models::LinearForecaster {
 public:
  FlakyLinear(data::WindowConfig window, int64_t dims)
      : LinearForecaster(window, dims) {}

  Tensor Forward(const data::Batch& batch) const override {
    forward_calls.fetch_add(1);
    if (armed.load()) {
      throw std::runtime_error("flaky model forward");
    }
    return LinearForecaster::Forward(batch);
  }

  mutable std::atomic<int64_t> forward_calls{0};
  std::atomic<bool> armed{false};
};

Result<std::unique_ptr<InferenceSession>> OpenLinearSession(
    const data::DatasetSplits& splits) {
  SessionConfig config;
  config.model_name = "linear";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  return InferenceSession::Open(config, "");
}

/// Trains a linear model briefly and publishes it as a checkpoint
/// directory; returns the trained model (eval mode) for reference outputs.
std::unique_ptr<models::Forecaster> PublishTrainedLinear(
    const data::DatasetSplits& splits, const std::string& dir) {
  auto model =
      models::MakeForecaster("linear", TestWindow(), splits.test.dims())
          .value();
  train::TrainConfig config;
  config.epochs = 1;
  config.max_train_batches = 4;
  config.max_eval_batches = 2;
  config.batch_size = 8;
  train::Trainer(config).Fit(model.get(), splits.train, splits.val);

  train::Adam optimizer(model->Parameters());
  train::TrainProgress progress;
  progress.global_step = 100;
  progress.epoch_rng_state = Rng(5).Serialize();
  train::CheckpointManager manager(dir);
  EXPECT_TRUE(manager.Save(*model, optimizer, progress).ok());
  model->SetTraining(false);
  return model;
}

// -- Fault injector --------------------------------------------------------

TEST(FaultInjectorTest, ParsesEnvStyleSpecs) {
  FaultInjector::Config config;
  ASSERT_TRUE(FaultInjector::ParseConfig(
      "throw_every=3,stall_us=250,stall_every=2,fail_reload=1", &config));
  EXPECT_EQ(config.throw_every, 3);
  EXPECT_EQ(config.stall_us, 250);
  EXPECT_EQ(config.stall_every, 2);
  EXPECT_TRUE(config.fail_reload);

  EXPECT_FALSE(FaultInjector::ParseConfig("bogus", &config));
  EXPECT_FALSE(FaultInjector::ParseConfig("throw_every=x", &config));
  EXPECT_FALSE(FaultInjector::ParseConfig("unknown_key=1", &config));
  EXPECT_FALSE(FaultInjector::ParseConfig("throw_every=-1", &config));
}

TEST(FaultInjectorTest, InjectsThrowsAndStallsIntoPredict) {
  data::DatasetSplits splits = MakeTestSplits();
  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());
  const data::Batch batch = splits.test.GetRange(0, 1);

  {
    InjectorGuard injector({.throw_every = 1});
    EXPECT_THROW(session.value()->Predict(batch), InjectedFault);
  }
  // Uninstalled: the hook is inert again.
  EXPECT_FALSE(FaultInjector::Enabled());
  (void)session.value()->Predict(batch);

  const int64_t stalls_before = CounterValue("serve.injected_stalls");
  {
    InjectorGuard injector({.stall_us = 1000, .stall_every = 1});
    (void)session.value()->Predict(batch);
  }
  EXPECT_EQ(CounterValue("serve.injected_stalls"), stalls_before + 1);
}

// -- Shutdown (satellites 1 + 2) -------------------------------------------

TEST(ShutdownTest, ConcurrentShutdownCallersAreSafe) {
  data::DatasetSplits splits = MakeTestSplits();
  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());

  // Repeat to give tsan / the double-join race a real chance to fire: both
  // threads used to observe dispatcher_.joinable() and join twice.
  for (int round = 0; round < 8; ++round) {
    BatchingQueue queue(session.value().get(),
                        {.max_batch_size = 4, .max_queue_delay_us = 500});
    std::vector<std::future<Result<Forecast>>> futures;
    for (int64_t r = 0; r < 3; ++r) {
      futures.push_back(queue.Submit(splits.test.GetRange(r, 1)));
    }
    std::vector<std::thread> closers;
    for (int t = 0; t < 4; ++t) {
      closers.emplace_back([&queue] { queue.Shutdown(); });
    }
    for (std::thread& t : closers) t.join();
    // Every pre-shutdown request completed (drain semantics).
    for (auto& f : futures) {
      Result<Forecast> result = f.get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
    EXPECT_EQ(queue.pending(), 0);
  }
}

TEST(ShutdownTest, SubmitAfterShutdownRejectsGracefully) {
  data::DatasetSplits splits = MakeTestSplits();
  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());

  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = 4, .max_queue_delay_us = 0});
  queue.Shutdown();
  queue.Shutdown();  // Idempotent.

  const int64_t rejected_before = CounterValue("serve.rejected");
  std::future<Result<Forecast>> future =
      queue.Submit(splits.test.GetRange(0, 1));
  // Refused at admission: already resolved, nobody had to dispatch it.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Result<Forecast> result = future.get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(CounterValue("serve.rejected"), rejected_before + 1);
}

// -- Admission (tentpole 1) ------------------------------------------------

TEST(AdmissionTest, MalformedRequestsRejectedNotCrashed) {
  data::DatasetSplits splits = MakeTestSplits();
  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());
  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = 4, .max_queue_delay_us = 0});

  // Empty batch.
  EXPECT_EQ(queue.Submit(data::Batch{}).get().status().code(),
            StatusCode::kInvalidArgument);

  // Wrong window geometry (input_len 12 != the session's 24).
  data::TimeSeries series = data::MakeDataset("etth1", 0.05).value();
  data::DatasetSplits short_splits = data::MakeSplits(
      series, {.input_len = 12, .label_len = 4, .pred_len = 4});
  EXPECT_EQ(queue.Submit(short_splits.test.GetRange(0, 1)).get()
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Admission pins the FULL Batch contract, not just x: a request with a
  // missing or mis-shaped x_mark / y / y_mark used to pass admission and
  // then CHECK-abort the whole process in Concat or the model forward.
  const data::Batch good = splits.test.GetRange(0, 1);
  const int64_t dims = splits.test.dims();
  const int64_t decoder_len = TestWindow().label_len + TestWindow().pred_len;
  const auto expect_rejected = [&](const data::Batch& bad) {
    std::future<Result<Forecast>> future = queue.Submit(bad);
    // Refused at admission: resolved without touching the dispatcher.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get().status().code(), StatusCode::kInvalidArgument);
  };
  {
    data::Batch bad = good;
    bad.x_mark = Tensor();  // Undefined calendar features.
    expect_rejected(bad);
  }
  {
    data::Batch bad = good;
    bad.y = Tensor();  // Undefined decoder block.
    expect_rejected(bad);
  }
  {
    data::Batch bad = good;
    bad.y_mark = Tensor();
    expect_rejected(bad);
  }
  {
    data::Batch bad = good;  // Wrong calendar-feature width.
    bad.x_mark = Tensor::Zeros(
        {1, TestWindow().input_len, data::kNumTimeFeatures + 1});
    expect_rejected(bad);
  }
  {
    data::Batch bad = good;  // Decoder block missing the pred_len rows.
    bad.y = Tensor::Zeros({1, TestWindow().label_len, dims});
    expect_rejected(bad);
  }
  {
    data::Batch bad = good;  // Row count disagrees with x.
    bad.y_mark = Tensor::Zeros({2, decoder_len, data::kNumTimeFeatures});
    expect_rejected(bad);
  }

  // The queue survived every malformed request: a well-formed one serves.
  Result<Forecast> served = queue.Submit(good).get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  queue.Shutdown();
}

TEST(AdmissionTest, BoundedQueueRejectsOverCapacityImmediately) {
  data::DatasetSplits splits = MakeTestSplits();
  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());

  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = 1,
                       .max_queue_delay_us = 0,
                       .max_queue_depth = 2});
  GateGuard gate;  // Blocks the dispatcher inside Predict.

  std::vector<std::future<Result<Forecast>>> accepted;
  accepted.push_back(queue.Submit(splits.test.GetRange(0, 1)));
  // The dispatcher picks up the first request and blocks at the gate.
  ASSERT_TRUE(WaitFor([&] { return queue.pending() == 0; }));
  accepted.push_back(queue.Submit(splits.test.GetRange(1, 1)));
  accepted.push_back(queue.Submit(splits.test.GetRange(2, 1)));
  ASSERT_EQ(queue.pending(), 2);

  const int64_t rejected_before = CounterValue("serve.rejected");
  std::future<Result<Forecast>> overflow =
      queue.Submit(splits.test.GetRange(3, 1));
  ASSERT_EQ(overflow.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(overflow.get().status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(CounterValue("serve.rejected"), rejected_before + 1);

  gate.Open();
  for (auto& f : accepted) {
    Result<Forecast> result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  queue.Shutdown();
}

// -- Deadlines (tentpole 1, acceptance b) ----------------------------------

TEST(DeadlineTest, ExpiredRequestsShedWithoutModelTime) {
  data::DatasetSplits splits = MakeTestSplits();
  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());
  const data::Batch batch_c = splits.test.GetRange(2, 1);
  const Tensor unloaded = session.value()->Predict(batch_c).point;

  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = 8, .max_queue_delay_us = 0});
  GateGuard gate;

  std::future<Result<Forecast>> a = queue.Submit(splits.test.GetRange(0, 1));
  ASSERT_TRUE(WaitFor([&] { return queue.pending() == 0; }));

  // B's 1ms deadline lapses while the dispatcher is stuck serving A; C has
  // ten seconds of slack and must be untouched by the shedding around it.
  std::future<Result<Forecast>> b = queue.Submit(
      splits.test.GetRange(1, 1), {.deadline_us = 1000});
  std::future<Result<Forecast>> c =
      queue.Submit(batch_c, {.deadline_us = 10 * 1000 * 1000});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const int64_t predicts_before = CounterValue("serve.predicts");
  const int64_t shed_before = CounterValue("serve.shed_expired");
  const int64_t slack_before = metrics::Registry::Global()
                                   .GetHistogram("serve.deadline_slack_seconds")
                                   .GetSnapshot()
                                   .count;
  gate.Open();

  ASSERT_TRUE(a.get().ok());
  Result<Forecast> shed = b.get();
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);
  Result<Forecast> served = c.get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ExpectTensorsBitwiseEqual(served.value().point, unloaded,
                            "within-deadline request vs unloaded path");

  EXPECT_EQ(CounterValue("serve.shed_expired"), shed_before + 1);
  // A's batch + C's batch ran; B never reached the model.
  EXPECT_EQ(CounterValue("serve.predicts"), predicts_before + 2);
  EXPECT_GT(metrics::Registry::Global()
                .GetHistogram("serve.deadline_slack_seconds")
                .GetSnapshot()
                .count,
            slack_before);
  queue.Shutdown();
}

TEST(DeadlineTest, HugeDeadlineSaturatesInsteadOfOverflowing) {
  data::DatasetSplits splits = MakeTestSplits();
  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());
  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = 4, .max_queue_delay_us = 0});

  // INT64_MAX microseconds used to overflow the absolute nanosecond
  // deadline (signed overflow, UB; in practice a negative deadline_ns that
  // silently disabled shedding). It must saturate to "effectively never"
  // and the request must serve normally.
  Result<Forecast> result =
      queue.Submit(splits.test.GetRange(0, 1),
                   {.deadline_us = std::numeric_limits<int64_t>::max()})
          .get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  queue.Shutdown();
}

// -- Fault containment (tentpole 2, acceptance a, satellite 3) -------------

TEST(ContainmentTest, ThrowingForwardFailsOnlyItsBatch) {
  data::DatasetSplits splits = MakeTestSplits();
  auto flaky_owner =
      std::make_unique<FlakyLinear>(TestWindow(), splits.test.dims());
  FlakyLinear* flaky = flaky_owner.get();

  SessionConfig config;
  config.model_name = "linear";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  auto session = InferenceSession::Open(config, std::move(flaky_owner));
  ASSERT_TRUE(session.ok());

  const data::Batch batch_ok = splits.test.GetRange(2, 1);
  const Tensor reference = session.value()->Predict(batch_ok).point;

  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = 4, .max_queue_delay_us = 20 * 1000});
  const int64_t failures_before = CounterValue("serve.batch_failures");

  // Two requests coalesce into one doomed batch: both futures must carry
  // the error, and nothing else may be affected.
  flaky->armed.store(true);
  std::future<Result<Forecast>> f1 = queue.Submit(splits.test.GetRange(0, 1));
  std::future<Result<Forecast>> f2 = queue.Submit(splits.test.GetRange(1, 1));
  Result<Forecast> r1 = f1.get();  // get() never throws: no broken promises.
  Result<Forecast> r2 = f2.get();
  EXPECT_FALSE(r1.ok());
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInternal);
  EXPECT_NE(r1.status().message().find("flaky model forward"),
            std::string::npos);
  EXPECT_EQ(CounterValue("serve.batch_failures"), failures_before + 1);

  // The queue keeps serving: the very next batch succeeds bitwise.
  flaky->armed.store(false);
  Result<Forecast> healed = queue.Submit(batch_ok).get();
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  ExpectTensorsBitwiseEqual(healed.value().point, reference,
                            "batch after contained failure");
  EXPECT_FALSE(queue.circuit_open());
  queue.Shutdown();
}

TEST(ContainmentTest, CircuitBreakerTripsDrainsAndRejects) {
  data::DatasetSplits splits = MakeTestSplits();
  auto flaky_owner =
      std::make_unique<FlakyLinear>(TestWindow(), splits.test.dims());
  FlakyLinear* flaky = flaky_owner.get();
  flaky->armed.store(true);

  SessionConfig config;
  config.model_name = "linear";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  auto session = InferenceSession::Open(config, std::move(flaky_owner));
  ASSERT_TRUE(session.ok());

  const int64_t opens_before = CounterValue("serve.circuit_opens");
  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = 1,
                       .max_queue_delay_us = 0,
                       .circuit_breaker_failures = 2});

  EXPECT_FALSE(queue.Submit(splits.test.GetRange(0, 1)).get().ok());
  EXPECT_FALSE(queue.Submit(splits.test.GetRange(1, 1)).get().ok());
  ASSERT_TRUE(WaitFor([&] { return queue.circuit_open(); }));
  EXPECT_EQ(CounterValue("serve.circuit_opens"), opens_before + 1);
  const int64_t forwards_at_trip = flaky->forward_calls.load();

  // Open circuit: rejected at admission, resolved immediately, and the
  // broken model is never called again — no hot loop.
  std::future<Result<Forecast>> refused =
      queue.Submit(splits.test.GetRange(2, 1));
  ASSERT_EQ(refused.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(refused.get().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(flaky->forward_calls.load(), forwards_at_trip);

  // Operator fixes the model and closes the circuit: serving resumes.
  flaky->armed.store(false);
  queue.ResetCircuitBreaker();
  Result<Forecast> healed = queue.Submit(splits.test.GetRange(2, 1)).get();
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  queue.Shutdown();
}

// -- Checkpoint hot-reload (tentpole 3, acceptance c) ----------------------

TEST(ReloadTest, ValidReloadSwapsParameters) {
  data::DatasetSplits splits = MakeTestSplits();
  const std::string dir = MakeTempDir("reload_valid");
  std::unique_ptr<models::Forecaster> trained =
      PublishTrainedLinear(splits, dir);

  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());
  const data::Batch batch = splits.test.GetRange(0, 2);
  const Tensor before = session.value()->Predict(batch).point;

  const int64_t reloads_before = CounterValue("serve.reloads");
  ASSERT_TRUE(session.value()->Reload(dir).ok());
  EXPECT_EQ(CounterValue("serve.reloads"), reloads_before + 1);

  const Tensor after = session.value()->Predict(batch).point;
  ExpectTensorsBitwiseEqual(after, trained->Predict(batch),
                            "post-reload vs trained model");
  // The swap actually changed the parameters (trained != fresh init).
  EXPECT_NE(std::memcmp(before.data(), after.data(),
                        before.numel() * sizeof(float)),
            0);
  std::filesystem::remove_all(dir);
}

TEST(ReloadTest, CorruptCheckpointRejectedOldModelBitwiseUndisturbed) {
  data::DatasetSplits splits = MakeTestSplits();
  const std::string dir = MakeTempDir("reload_corrupt");
  PublishTrainedLinear(splits, dir);
  const std::string path =
      train::CheckpointManager(dir).ListCheckpoints().value().back();

  // Flip one byte in the middle of the file: some section CRC must fail.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x20;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());
  const data::Batch batch = splits.test.GetRange(0, 2);
  const Tensor before = session.value()->Predict(batch).point;

  const int64_t failures_before = CounterValue("serve.reload_failures");
  EXPECT_FALSE(session.value()->Reload(path).ok());
  EXPECT_EQ(CounterValue("serve.reload_failures"), failures_before + 1);
  ExpectTensorsBitwiseEqual(session.value()->Predict(batch).point, before,
                            "outputs after rejected corrupt reload");
  std::filesystem::remove_all(dir);
}

TEST(ReloadTest, WrongArchitectureCheckpointRejected) {
  data::DatasetSplits splits = MakeTestSplits();
  const std::string dir = MakeTempDir("reload_wrong_arch");
  // Publish a GRU checkpoint, then try to reload it into a linear session.
  {
    auto gru =
        models::MakeForecaster("gru", TestWindow(), splits.test.dims())
            .value();
    train::Adam optimizer(gru->Parameters());
    train::TrainProgress progress;
    progress.global_step = 1;
    progress.epoch_rng_state = Rng(3).Serialize();
    ASSERT_TRUE(train::CheckpointManager(dir).Save(*gru, optimizer, progress)
                    .ok());
  }

  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());
  const data::Batch batch = splits.test.GetRange(0, 2);
  const Tensor before = session.value()->Predict(batch).point;

  EXPECT_FALSE(session.value()->Reload(dir).ok());
  ExpectTensorsBitwiseEqual(session.value()->Predict(batch).point, before,
                            "outputs after rejected wrong-arch reload");
  std::filesystem::remove_all(dir);
}

TEST(ReloadTest, InjectedMidSwapFaultLeavesOldModelServing) {
  data::DatasetSplits splits = MakeTestSplits();
  const std::string dir = MakeTempDir("reload_midswap");
  PublishTrainedLinear(splits, dir);

  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());
  const data::Batch batch = splits.test.GetRange(0, 2);
  const Tensor before = session.value()->Predict(batch).point;

  {
    // The chaos case tentpole (4) names: the checkpoint stages fine, then
    // the swap step is corrupted. The old model must keep serving.
    InjectorGuard injector({.fail_reload = true});
    Status status = session.value()->Reload(dir);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("injected"), std::string::npos);
    ExpectTensorsBitwiseEqual(session.value()->Predict(batch).point, before,
                              "outputs after injected mid-swap fault");
  }
  // Injector gone: the same reload goes through.
  EXPECT_TRUE(session.value()->Reload(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(ReloadTest, ReloadInvalidatesStaticPlanCache) {
  data::DatasetSplits splits = MakeTestSplits();
  const std::string dir = MakeTempDir("reload_plan");
  std::unique_ptr<models::Forecaster> trained =
      PublishTrainedLinear(splits, dir);

  SessionConfig config;
  config.model_name = "linear";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  config.use_static_plan = true;
  auto session = InferenceSession::Open(config, "");
  ASSERT_TRUE(session.ok());

  const data::Batch batch = splits.test.GetRange(0, 2);
  (void)session.value()->Predict(batch);  // Builds the plan.
  (void)session.value()->Predict(batch);  // Replays it.
  ASSERT_NE(session.value()->plan_for(batch), nullptr);

  ASSERT_TRUE(session.value()->Reload(dir).ok());
  // Plans compiled against the old parameters are gone...
  EXPECT_EQ(session.value()->plan_for(batch), nullptr);
  // ...and the rebuilt plan serves the *new* parameters bitwise.
  ExpectTensorsBitwiseEqual(session.value()->Predict(batch).point,
                            trained->Predict(batch),
                            "plan replay after reload");
  EXPECT_NE(session.value()->plan_for(batch), nullptr);
  std::filesystem::remove_all(dir);
}

TEST(ReloadTest, ConcurrentReloadsUnderClientLoadZeroFailures) {
  data::DatasetSplits splits = MakeTestSplits();
  const std::string dir = MakeTempDir("reload_live");
  PublishTrainedLinear(splits, dir);

  auto session = OpenLinearSession(splits);
  ASSERT_TRUE(session.ok());
  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = 4, .max_queue_delay_us = 1000});

  // Acceptance (c): a valid reload swaps with zero failed in-flight
  // requests under concurrent client load.
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 24;
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        Result<Forecast> result =
            queue.Submit(splits.test.GetRange((c + r) % 8, 1)).get();
        if (!result.ok() ||
            result.value().point.size(1) != TestWindow().pred_len) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread reloader([&] {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(session.value()->Reload(dir).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (std::thread& t : clients) t.join();
  reloader.join();
  queue.Shutdown();
  EXPECT_EQ(failures.load(), 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace conformer::serve
