// Determinism suite for the thread-pool parallel kernel layer: every
// threaded kernel must produce bitwise-identical outputs AND gradients at 1
// thread and at many threads (the pool's chunk decomposition depends only on
// the range and grain, never the thread count). Also covers the ParallelFor
// contract itself (empty range, oversubscription, exactly-once) and the
// zero-sized Gemm / MatMul edge cases.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include "attention/attention.h"
#include "baselines/timesnet_lite.h"
#include "data/window_dataset.h"
#include "tensor/gradcheck.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace conformer {
namespace {

using Inputs = std::vector<Tensor>;

constexpr int64_t kManyThreads = 8;

Tensor Leaf(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Randn(shape, &rng);
  t.set_requires_grad(true);
  return t;
}

// Restores the ambient single-thread setting after each test so the order
// of tests never matters.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::Global().SetNumThreads(1); }
};

// Runs `compute` pinned to 1 thread and to kManyThreads, then verifies that
// every returned tensor matches bitwise (memcmp over the raw floats — not
// EXPECT_FLOAT_EQ, which would accept reordered summation).
void ExpectBitwiseIdentical(const std::function<std::vector<Tensor>()>& compute) {
  ThreadPool::Global().SetNumThreads(1);
  const std::vector<Tensor> single = compute();
  ThreadPool::Global().SetNumThreads(kManyThreads);
  const std::vector<Tensor> multi = compute();
  ASSERT_EQ(single.size(), multi.size());
  for (size_t t = 0; t < single.size(); ++t) {
    ASSERT_EQ(single[t].shape(), multi[t].shape()) << "tensor " << t;
    const int64_t n = single[t].numel();
    ASSERT_EQ(0, std::memcmp(single[t].data(), multi[t].data(),
                             sizeof(float) * n))
        << "tensor " << t << " differs between 1 and " << kManyThreads
        << " threads";
  }
}

// Forward + backward through `f` on fresh leaves; returns {out, grads...}.
std::vector<Tensor> ForwardBackward(
    const std::function<Tensor(const Inputs&)>& f,
    const std::vector<Shape>& shapes) {
  Inputs inputs;
  for (size_t i = 0; i < shapes.size(); ++i) {
    inputs.push_back(Leaf(shapes[i], /*seed=*/100 + i));
  }
  Tensor out = f(inputs);
  Sum(Mul(out, out)).Backward();
  std::vector<Tensor> results = {out};
  for (const Tensor& in : inputs) results.push_back(in.grad());
  return results;
}

// -- ParallelFor contract ---------------------------------------------------

TEST_F(ParallelTest, EmptyRangeNeverInvokesFn) {
  ThreadPool::Global().SetNumThreads(kManyThreads);
  bool called = false;
  ParallelFor(0, 0, 4, [&](int64_t, int64_t) { called = true; });
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { called = true; });
  ParallelFor(7, 3, 1, [&](int64_t, int64_t) { called = true; });  // inverted
  EXPECT_FALSE(called);
}

TEST_F(ParallelTest, OversubscriptionRunsEveryIndexExactlyOnce) {
  // Far more threads (16) than items (5): stripes beyond the chunk count
  // must simply find no work, and each index runs exactly once.
  ThreadPool::Global().SetNumThreads(16);
  std::vector<std::atomic<int>> hits(5);
  for (auto& h : hits) h = 0;
  ParallelFor(0, 5, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_F(ParallelTest, ChunkBoundariesIndependentOfThreadCount) {
  auto record = [](std::vector<std::pair<int64_t, int64_t>>* chunks) {
    std::mutex m;
    ParallelFor(3, 103, 7, [&](int64_t b, int64_t e) {
      std::lock_guard<std::mutex> lock(m);
      chunks->emplace_back(b, e);
    });
    std::sort(chunks->begin(), chunks->end());
  };
  std::vector<std::pair<int64_t, int64_t>> single;
  std::vector<std::pair<int64_t, int64_t>> multi;
  ThreadPool::Global().SetNumThreads(1);
  record(&single);
  ThreadPool::Global().SetNumThreads(kManyThreads);
  record(&multi);
  EXPECT_EQ(single, multi);
  // 100 items at grain 7 -> 15 chunks, last one short.
  ASSERT_EQ(single.size(), 15u);
  EXPECT_EQ(single.front(), (std::pair<int64_t, int64_t>{3, 10}));
  EXPECT_EQ(single.back(), (std::pair<int64_t, int64_t>{101, 103}));
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  ThreadPool::Global().SetNumThreads(kManyThreads);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  ParallelFor(0, 8, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      ParallelFor(0, 8, 1, [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) hits[o * 8 + i].fetch_add(1);
      });
    }
  });
  for (int64_t i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_F(ParallelTest, SetNumThreadsSurvivesRepeatedResizing) {
  // Regression: after dispatches, a resize used to hand new workers the
  // historic job slot (stale fn pointer). Exercise dispatch -> resize ->
  // dispatch across several sizes.
  std::vector<float> buf(1024, 0.0f);
  for (int64_t threads : {2, 1, 4, 16, 2, 8}) {
    ThreadPool::Global().SetNumThreads(threads);
    EXPECT_EQ(ThreadPool::Global().num_threads(), threads);
    ParallelFor(0, 1024, 64, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) buf[i] += 1.0f;
    });
  }
  for (float v : buf) EXPECT_EQ(v, 6.0f);
}

TEST_F(ParallelTest, ParallelReduceIsBitwiseDeterministic) {
  // Sum of a pseudo-random sequence; per-chunk partials folded in chunk
  // order must not depend on the thread count.
  std::vector<float> values(10000);
  Rng rng(3);
  for (float& v : values) v = static_cast<float>(rng.Normal());
  auto reduce = [&] {
    return ParallelReduce(
        int64_t{0}, static_cast<int64_t>(values.size()), int64_t{257}, 0.0f,
        [&](int64_t b, int64_t e) {
          float acc = 0.0f;
          for (int64_t i = b; i < e; ++i) acc += values[i];
          return acc;
        },
        [](float a, float b) { return a + b; });
  };
  ThreadPool::Global().SetNumThreads(1);
  const float single = reduce();
  ThreadPool::Global().SetNumThreads(kManyThreads);
  const float multi = reduce();
  EXPECT_EQ(std::memcmp(&single, &multi, sizeof(float)), 0);
}

// -- zero-sized Gemm / MatMul ----------------------------------------------

TEST_F(ParallelTest, GemmZeroM) {
  // m == 0: nothing written, no crash.
  std::vector<float> b(6, 1.0f);
  kernels::Gemm(false, false, 0, 3, 2, nullptr, b.data(), nullptr,
                /*accumulate=*/false);
}

TEST_F(ParallelTest, GemmZeroK) {
  // k == 0: the product is a zero matrix; accumulate must keep c.
  std::vector<float> c(6, 7.0f);
  kernels::Gemm(false, false, 2, 3, 0, nullptr, nullptr, c.data(),
                /*accumulate=*/false);
  for (float v : c) EXPECT_EQ(v, 0.0f);

  std::vector<float> c2(6, 7.0f);
  kernels::Gemm(false, false, 2, 3, 0, nullptr, nullptr, c2.data(),
                /*accumulate=*/true);
  for (float v : c2) EXPECT_EQ(v, 7.0f);
}

TEST_F(ParallelTest, GemmZeroN) {
  kernels::Gemm(false, false, 2, 0, 3, nullptr, nullptr, nullptr,
                /*accumulate=*/false);
}

TEST_F(ParallelTest, MatMulZeroInnerDim) {
  // [2, 0] x [0, 3] is a 2x3 zero matrix.
  Tensor a = Tensor::Zeros({2, 0});
  Tensor b = Tensor::Zeros({0, 3});
  Tensor out = MatMul(a, b);
  ASSERT_EQ(out.shape(), (Shape{2, 3}));
  for (int64_t i = 0; i < out.numel(); ++i) EXPECT_EQ(out.data()[i], 0.0f);
}

// -- bitwise determinism per kernel ----------------------------------------

TEST_F(ParallelTest, GemmAllTransposeVariants) {
  Rng rng(11);
  const int64_t m = 33, n = 29, k = 31;  // not multiples of any grain
  Tensor a_mk = Tensor::Randn({m, k}, &rng);
  Tensor a_km = Tensor::Randn({k, m}, &rng);
  Tensor b_kn = Tensor::Randn({k, n}, &rng);
  Tensor b_nk = Tensor::Randn({n, k}, &rng);
  for (int variant = 0; variant < 4; ++variant) {
    const bool ta = variant & 1;
    const bool tb = variant & 2;
    ExpectBitwiseIdentical([&] {
      std::vector<float> c(m * n, 0.5f);
      kernels::Gemm(ta, tb, m, n, k, (ta ? a_km : a_mk).data(),
                    (tb ? b_nk : b_kn).data(), c.data(), /*accumulate=*/true);
      return std::vector<Tensor>{Tensor::FromVector(std::move(c), {m, n})};
    });
  }
}

TEST_F(ParallelTest, ElementwiseBroadcastForwardAndBackward) {
  ExpectBitwiseIdentical([] {
    return ForwardBackward(
        [](const Inputs& in) { return Mul(Add(in[0], in[1]), in[2]); },
        {{64, 1, 33}, {1, 17, 33}, {64, 17, 1}});
  });
}

TEST_F(ParallelTest, UnaryForwardAndBackward) {
  ExpectBitwiseIdentical([] {
    return ForwardBackward(
        [](const Inputs& in) { return Tanh(Gelu(in[0])); }, {{130, 257}});
  });
}

TEST_F(ParallelTest, SoftmaxAndLogSoftmax) {
  for (int64_t dim : {0, 1, 2}) {
    ExpectBitwiseIdentical([dim] {
      return ForwardBackward(
          [dim](const Inputs& in) {
            return Add(Softmax(in[0], dim), LogSoftmax(in[0], dim));
          },
          {{19, 23, 17}});
    });
  }
}

TEST_F(ParallelTest, SumOverVariousDims) {
  const std::vector<std::vector<int64_t>> dim_sets = {
      {}, {0}, {1}, {-1}, {0, 2}};
  for (const auto& dims : dim_sets) {
    ExpectBitwiseIdentical([&dims] {
      return ForwardBackward(
          [&dims](const Inputs& in) { return Sum(in[0], dims); },
          {{23, 19, 29}});
    });
  }
  // Large flat reduction: exercises the chunked-partial path (n >= 2*grain).
  ExpectBitwiseIdentical([] {
    return ForwardBackward([](const Inputs& in) { return Sum(in[0]); },
                           {{5, 41, 61}});
  });
}

TEST_F(ParallelTest, MaxMinOverDim) {
  for (int64_t dim : {0, 1, 2}) {
    ExpectBitwiseIdentical([dim] {
      return ForwardBackward(
          [dim](const Inputs& in) {
            return Add(Max(in[0], dim), Min(in[0], dim));
          },
          {{31, 37, 11}});
    });
  }
}

TEST_F(ParallelTest, PoolingForwardAndBackward) {
  ExpectBitwiseIdentical([] {
    return ForwardBackward(
        [](const Inputs& in) {
          return Add(AvgPool1d(in[0], 4, 2), MaxPool1d(in[0], 4, 2));
        },
        {{6, 7, 64}});
  });
}

TEST_F(ParallelTest, CumsumForwardAndBackward) {
  for (int64_t dim : {0, 1, 2}) {
    ExpectBitwiseIdentical([dim] {
      return ForwardBackward(
          [dim](const Inputs& in) { return Cumsum(in[0], dim); },
          {{13, 17, 19}});
    });
  }
}

TEST_F(ParallelTest, IndexSelectForwardAndBackward) {
  // Repeated indices: backward scatter-adds into the same rows.
  ExpectBitwiseIdentical([] {
    return ForwardBackward(
        [](const Inputs& in) {
          return IndexSelect(in[0], 1, {0, 2, 2, 5, 1, 2});
        },
        {{9, 7, 13}});
  });
}

TEST_F(ParallelTest, BatchedMatMulForwardAndBackward) {
  ExpectBitwiseIdentical([] {
    return ForwardBackward(
        [](const Inputs& in) { return MatMul(in[0], in[1]); },
        {{8, 17, 13}, {8, 13, 19}});
  });
}

TEST_F(ParallelTest, BroadcastBatchMatMulForwardAndBackward) {
  // b is broadcast across the batch: its gradient accumulates over all
  // batches, which must stay in the fixed sequential order.
  ExpectBitwiseIdentical([] {
    return ForwardBackward(
        [](const Inputs& in) { return MatMul(in[0], in[1]); },
        {{6, 4, 11, 13}, {13, 19}});
  });
}

TEST_F(ParallelTest, Conv1dForwardAndBackward) {
  ExpectBitwiseIdentical([] {
    return ForwardBackward(
        [](const Inputs& in) {
          return Conv1d(in[0], in[1], in[2], /*padding=*/2,
                        PadMode::kReplicate, /*dilation=*/2);
        },
        {{4, 3, 48}, {5, 3, 3}, {5}});
  });
}

TEST_F(ParallelTest, StridedConv1dForwardAndBackward) {
  ExpectBitwiseIdentical([] {
    return ForwardBackward(
        [](const Inputs& in) {
          return Conv1d(in[0], in[1], in[2], /*padding=*/1, PadMode::kZeros,
                        /*dilation=*/1, /*stride=*/3);
        },
        {{4, 3, 48}, {5, 3, 3}, {5}});
  });
}

TEST_F(ParallelTest, Conv2dForwardAndBackward) {
  ExpectBitwiseIdentical([] {
    return ForwardBackward(
        [](const Inputs& in) { return Conv2d(in[0], in[1], in[2], 1, 1); },
        {{3, 4, 9, 7}, {6, 4, 3, 3}, {6}});
  });
}

TEST_F(ParallelTest, TimesNetLitePeriodPathForwardAndBackward) {
  // Whole period-adaptive path: FFT period selection, grid fold, 2-D convs,
  // softmax recombine. Params are built once; only execution is re-run.
  models::TimesNetLite model({.input_len = 24, .label_len = 8, .pred_len = 8},
                             /*dims=*/3, /*d_model=*/8, /*top_k=*/3);
  ExpectBitwiseIdentical([&] {
    model.ZeroGrad();
    data::Batch batch;
    Rng rng(424);
    batch.x = Tensor::Randn({2, 24, 3}, &rng);
    Tensor out = model.Forward(batch);
    Sum(Mul(out, out)).Backward();
    std::vector<Tensor> results = {out};
    for (Tensor& p : model.Parameters()) results.push_back(p.grad().Clone());
    return results;
  });
}

TEST_F(ParallelTest, AttentionMechanismsForwardAndBackward) {
  attention::AttentionConfig config;
  config.window = 3;
  config.factor = 2;
  config.lsh_chunk = 8;
  const attention::AttentionKind kinds[] = {
      attention::AttentionKind::kFull,
      attention::AttentionKind::kSlidingWindow,
      attention::AttentionKind::kProbSparse,
      attention::AttentionKind::kLogSparse,
      attention::AttentionKind::kLsh,
      attention::AttentionKind::kAutoCorrelation,
  };
  for (attention::AttentionKind kind : kinds) {
    auto mech = attention::MakeAttention(kind, config);
    ExpectBitwiseIdentical([&] {
      return ForwardBackward(
          [&](const Inputs& in) {
            return mech->Forward(in[0], in[1], in[2], /*causal=*/false);
          },
          {{4, 24, 8}, {4, 24, 8}, {4, 24, 8}});
    });
  }
}

// -- gradcheck under many threads ------------------------------------------

TEST_F(ParallelTest, GradCheckPassesAtManyThreads) {
  ThreadPool::Global().SetNumThreads(kManyThreads);
  GradCheckResult r = CheckGradients(
      [](const Inputs& in) {
        return Sum(Softmax(MatMul(in[0], in[1]), -1));
      },
      {Leaf({3, 5}, 1), Leaf({5, 4}, 2)});
  EXPECT_TRUE(r.passed) << r.message << " (max err " << r.max_abs_error << ")";
}

}  // namespace
}  // namespace conformer
