#include <gtest/gtest.h>

#include <cstdlib>

#include "util/civil_time.h"
#include "util/env.h"
#include "util/linalg.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace conformer {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// -- string_util ----------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(Strip("  x y  "), "x y");
  EXPECT_EQ(Strip("\t\n"), "");
  EXPECT_EQ(Strip("abc"), "abc");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("conformer", "con"));
  EXPECT_FALSE(StartsWith("con", "conformer"));
  EXPECT_TRUE(EndsWith("table2.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "table.csv"));
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e-3 ").value(), -1e-3);
  EXPECT_FALSE(ParseDouble("12x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, ParseIntStrict) {
  EXPECT_EQ(ParseInt("123").value(), 123);
  EXPECT_EQ(ParseInt("-5").value(), -5);
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
}

TEST(StringUtilTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(0.21239, 4), "0.2124");
  EXPECT_EQ(FormatFixed(1.0, 2), "1.00");
}

// -- civil_time -----------------------------------------------------------

TEST(CivilTimeTest, EpochRoundTrip) {
  CivilTime ct = CivilFromUnixSeconds(0);
  EXPECT_EQ(ct.year, 1970);
  EXPECT_EQ(ct.month, 1);
  EXPECT_EQ(ct.day, 1);
  EXPECT_EQ(ct.hour, 0);
  EXPECT_EQ(UnixSecondsFromCivil(ct), 0);
}

TEST(CivilTimeTest, KnownDate) {
  // 2020-03-01 12:30:45 UTC == 1583065845.
  CivilTime ct{2020, 3, 1, 12, 30, 45};
  EXPECT_EQ(UnixSecondsFromCivil(ct), 1583065845);
  EXPECT_EQ(CivilFromUnixSeconds(1583065845), ct);
}

TEST(CivilTimeTest, RoundTripSweep) {
  // Every 1000003 seconds across several decades, including pre-epoch.
  for (int64_t t = -1000000000; t <= 2000000000; t += 100000003) {
    EXPECT_EQ(UnixSecondsFromCivil(CivilFromUnixSeconds(t)), t) << t;
  }
}

TEST(CivilTimeTest, DayOfWeek) {
  // 1970-01-01 was a Thursday (index 3, Monday = 0).
  EXPECT_EQ(DayOfWeek(0), 3);
  // 2023-01-02 was a Monday.
  EXPECT_EQ(DayOfWeek(UnixSecondsFromCivil({2023, 1, 2, 0, 0, 0})), 0);
  // 2023-01-08 was a Sunday.
  EXPECT_EQ(DayOfWeek(UnixSecondsFromCivil({2023, 1, 8, 12, 0, 0})), 6);
}

TEST(CivilTimeTest, DayOfYear) {
  EXPECT_EQ(DayOfYear(UnixSecondsFromCivil({2021, 1, 1, 0, 0, 0})), 1);
  EXPECT_EQ(DayOfYear(UnixSecondsFromCivil({2021, 12, 31, 0, 0, 0})), 365);
  EXPECT_EQ(DayOfYear(UnixSecondsFromCivil({2020, 12, 31, 0, 0, 0})), 366);
}

TEST(CivilTimeTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2020));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2023));
}

TEST(CivilTimeTest, ParseTimestampFormats) {
  EXPECT_EQ(ParseTimestamp("1970-01-01 00:00:00").value(), 0);
  EXPECT_EQ(ParseTimestamp("1970-01-02").value(), 86400);
  EXPECT_EQ(ParseTimestamp("1970-01-01 01:00").value(), 3600);
  EXPECT_FALSE(ParseTimestamp("not a date").ok());
  EXPECT_FALSE(ParseTimestamp("2020-13-01").ok());
}

TEST(CivilTimeTest, FormatTimestamp) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00");
  EXPECT_EQ(FormatTimestamp(1583065845), "2020-03-01 12:30:45");
}

// -- random ---------------------------------------------------------------

TEST(RandomTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
}

TEST(RandomTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RandomTest, NormalMoments) {
  Rng rng(2);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RandomTest, PermutationIsBijective) {
  Rng rng(3);
  std::vector<int64_t> perm = rng.Permutation(100);
  std::vector<bool> seen(100, false);
  for (int64_t p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 100);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(RandomTest, BernoulliProbability) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RandomTest, GlobalRngReseed) {
  SeedGlobalRng(99);
  const double a = GlobalRng().Uniform();
  SeedGlobalRng(99);
  EXPECT_DOUBLE_EQ(GlobalRng().Uniform(), a);
}

TEST(RandomTest, StudentTIsHeavyTailed) {
  Rng rng(5);
  int extreme_t = 0;
  int extreme_n = 0;
  for (int i = 0; i < 20000; ++i) {
    if (std::fabs(rng.StudentT(3.0)) > 3.0) ++extreme_t;
    if (std::fabs(rng.Normal()) > 3.0) ++extreme_n;
  }
  EXPECT_GT(extreme_t, extreme_n * 3);
}

// -- env ---------------------------------------------------------------------

TEST(EnvTest, FallbackWhenUnset) {
  unsetenv("CONFORMER_TEST_ENV_VAR");
  EXPECT_EQ(GetEnv("CONFORMER_TEST_ENV_VAR", "dflt"), "dflt");
  EXPECT_EQ(GetEnvInt("CONFORMER_TEST_ENV_VAR", 7), 7);
}

TEST(EnvTest, ReadsValues) {
  setenv("CONFORMER_TEST_ENV_VAR", "full", 1);
  EXPECT_EQ(GetEnv("CONFORMER_TEST_ENV_VAR"), "full");
  setenv("CONFORMER_TEST_ENV_VAR", "42", 1);
  EXPECT_EQ(GetEnvInt("CONFORMER_TEST_ENV_VAR", 0), 42);
  setenv("CONFORMER_TEST_ENV_VAR", "not_a_number", 1);
  EXPECT_EQ(GetEnvInt("CONFORMER_TEST_ENV_VAR", 9), 9);
  unsetenv("CONFORMER_TEST_ENV_VAR");
}

// -- logging / CHECK ----------------------------------------------------------

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(CONFORMER_CHECK(1 == 2) << "impossible", "Check failed");
  EXPECT_DEATH(CONFORMER_CHECK_EQ(3, 4), "3 vs 4");
  EXPECT_DEATH(CONFORMER_CHECK_LT(5, 2), "Check failed");
}

TEST(LoggingTest, CheckPassesSilently) {
  CONFORMER_CHECK(true) << "never rendered";
  CONFORMER_CHECK_EQ(1, 1);
  CONFORMER_CHECK_GE(2, 1);
  SUCCEED();
}

TEST(LoggingTest, LevelFilteringRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

// -- linalg -----------------------------------------------------------------

TEST(LinalgTest, CholeskyFactorKnownMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  std::vector<double> a = {4, 2, 2, 3};
  ASSERT_TRUE(CholeskyFactor(&a, 2).ok());
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[2], 1.0, 1e-12);
  EXPECT_NEAR(a[3], std::sqrt(2.0), 1e-12);
}

TEST(LinalgTest, CholeskyRejectsIndefinite) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor(&a, 2).ok());
}

TEST(LinalgTest, SolveRecoversKnownSolution) {
  // A x = b with A = [[4, 2], [2, 3]], x = (1, -2) -> b = (0, -4).
  std::vector<double> a = {4, 2, 2, 3};
  ASSERT_TRUE(CholeskyFactor(&a, 2).ok());
  std::vector<double> b = {0, -4};
  CholeskySolveInPlace(a, 2, &b);
  EXPECT_NEAR(b[0], 1.0, 1e-10);
  EXPECT_NEAR(b[1], -2.0, 1e-10);
}

TEST(LinalgTest, RidgeLeastSquaresRecoversLinearMap) {
  // y = 2*x0 - x1 + 0.5, exactly; ridge ~ 0 recovers the coefficients.
  Rng rng(21);
  const int64_t rows = 64;
  std::vector<double> x(rows * 3);
  std::vector<double> y(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const double x0 = rng.Normal();
    const double x1 = rng.Normal();
    x[r * 3] = x0;
    x[r * 3 + 1] = x1;
    x[r * 3 + 2] = 1.0;  // bias column
    y[r] = 2.0 * x0 - x1 + 0.5;
  }
  auto w = RidgeLeastSquares(x, rows, 3, y, 1, 1e-9);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w.value()[0], 2.0, 1e-6);
  EXPECT_NEAR(w.value()[1], -1.0, 1e-6);
  EXPECT_NEAR(w.value()[2], 0.5, 1e-6);
}

TEST(LinalgTest, RidgeShrinksCoefficients) {
  Rng rng(22);
  const int64_t rows = 32;
  std::vector<double> x(rows);
  std::vector<double> y(rows);
  for (int64_t r = 0; r < rows; ++r) {
    x[r] = rng.Normal();
    y[r] = 3.0 * x[r];
  }
  auto small = RidgeLeastSquares(x, rows, 1, y, 1, 1e-9);
  auto large = RidgeLeastSquares(x, rows, 1, y, 1, 1e3);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_NEAR(small.value()[0], 3.0, 1e-6);
  EXPECT_LT(std::fabs(large.value()[0]), 1.0);
}

// -- civil time: month boundaries -----------------------------------------------

TEST(CivilTimeTest, MonthBoundaries) {
  // End of February in a leap year rolls into the 29th.
  const int64_t feb28_2020 = UnixSecondsFromCivil({2020, 2, 28, 23, 59, 59});
  CivilTime next = CivilFromUnixSeconds(feb28_2020 + 1);
  EXPECT_EQ(next.month, 2);
  EXPECT_EQ(next.day, 29);
  // And into March the day after.
  CivilTime march = CivilFromUnixSeconds(feb28_2020 + 1 + 86400);
  EXPECT_EQ(march.month, 3);
  EXPECT_EQ(march.day, 1);
  // Non-leap year goes straight to March.
  const int64_t feb28_2021 = UnixSecondsFromCivil({2021, 2, 28, 23, 59, 59});
  CivilTime after = CivilFromUnixSeconds(feb28_2021 + 1);
  EXPECT_EQ(after.month, 3);
  EXPECT_EQ(after.day, 1);
}

TEST(CivilTimeTest, YearBoundary) {
  const int64_t nye = UnixSecondsFromCivil({2020, 12, 31, 23, 59, 59});
  CivilTime newyear = CivilFromUnixSeconds(nye + 1);
  EXPECT_EQ(newyear.year, 2021);
  EXPECT_EQ(newyear.month, 1);
  EXPECT_EQ(newyear.day, 1);
}

}  // namespace
}  // namespace conformer
