// Static-runtime suite (docs/STATIC_RUNTIME.md): differential parity of the
// AOT-planned replay against the eager Predict path. Every registry model is
// traced, planned, and replayed — cold and warm, at 1 and 8 threads —
// with bitwise comparison per node (VerifyParity) and at the output boundary.
// Also covered: the seeded randomized-geometry fuzz pass, the injected-
// mismatch drill for the per-node checker, arena offset/liveness overlap
// invariants, warm-buffer-pool interaction, untraceable-op fallback, the
// InferenceSession plan cache, and concurrent replay through BatchingQueue
// (tsan label).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "data/dataset_registry.h"
#include "runtime/static_runtime.h"
#include "serve/batching_queue.h"
#include "serve/inference_session.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace conformer::runtime {
namespace {

data::WindowConfig TestWindow() {
  return {.input_len = 24, .label_len = 8, .pred_len = 8};
}

data::DatasetSplits MakeTestSplits() {
  data::TimeSeries series = data::MakeDataset("etth1", 0.05).value();
  return data::MakeSplits(series, TestWindow());
}

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b,
                               const std::string& what) {
  ASSERT_TRUE(a.defined() && b.defined()) << what;
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)), 0)
      << what << " differs";
}

bool TensorsBitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.defined() && b.defined() && a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

// Restores the global kernel pool size when a test returns or fails.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ThreadPool::Global().num_threads()) {}
  ~ThreadCountGuard() { ThreadPool::Global().SetNumThreads(saved_); }

 private:
  int64_t saved_;
};

std::function<Tensor(const data::Batch&)> BindPredict(
    const models::Forecaster& model) {
  return [&model](const data::Batch& b) { return model.Predict(b); };
}

// -- Differential parity: every registry model, 1 and 8 threads ------------

TEST(StaticRuntimeTest, AllModelsReplayBitwiseIdenticalAtOneAndEightThreads) {
  ThreadCountGuard thread_guard;
  data::DatasetSplits splits = MakeTestSplits();
  const data::Batch batch = splits.test.GetRange(0, 3);

  for (int64_t threads : {int64_t{1}, int64_t{8}}) {
    ThreadPool::Global().SetNumThreads(threads);
    for (const std::string& name : models::AvailableModels()) {
      const std::string tag =
          name + " @" + std::to_string(threads) + " threads";
      auto model =
          models::MakeForecaster(name, TestWindow(), splits.test.dims())
              .value();
      model->SetTraining(false);
      const Tensor eager = model->Predict(batch);

      Result<TraceResult> traced = CapturePredictPlan(BindPredict(*model),
                                                      batch);
      ASSERT_TRUE(traced.ok()) << tag << ": " << traced.status().ToString();
      // The traced call's own output answers the request that built the plan.
      ExpectTensorsBitwiseEqual(eager, traced.value().output,
                                tag + " traced output");

      PlanExecutor executor(traced.value().plan);
      ASSERT_TRUE(executor.GeometryMatches(batch)) << tag;
      const Tensor cold = executor.Run(batch);
      ExpectTensorsBitwiseEqual(eager, cold, tag + " cold replay");

      // Warm replay under the per-node checker: every planned step must
      // reproduce its eager node value bitwise, not just the boundary.
      ParityReport report = VerifyParity(executor, BindPredict(*model), batch);
      EXPECT_TRUE(report.structural_ok)
          << tag << ": " << report.structural_error;
      EXPECT_TRUE(report.mismatches.empty())
          << tag << ": first mismatch at step "
          << report.mismatches[0].step_index << " ("
          << report.mismatches[0].op_name << ")";
    }
  }
}

// -- Seeded randomized-geometry fuzz ---------------------------------------

TEST(StaticRuntimeFuzzTest, RandomGeometriesReplayBitwiseIdentical) {
  // Deterministic: the seed fixes the (model, window, batch) sequence, so a
  // failure reproduces by rerunning the test.
  constexpr uint64_t kFuzzSeed = 20260808;
  constexpr int kIterations = 12;
  Rng rng(kFuzzSeed);

  const std::vector<std::string> names = models::AvailableModels();
  data::TimeSeries series = data::MakeDataset("etth1", 0.08).value();

  for (int iter = 0; iter < kIterations; ++iter) {
    const std::string& name =
        names[rng.UniformInt(static_cast<int64_t>(names.size()))];
    data::WindowConfig window;
    // >= 24 keeps every model's structural constraints satisfiable (the
    // seasonal_naive period defaults to 24).
    window.input_len = 24 + rng.UniformInt(25);            // 24..48
    window.pred_len = 4 + rng.UniformInt(13);              // 4..16
    window.label_len = 4 + rng.UniformInt(window.input_len - 3);
    const int64_t batch_size = 1 + rng.UniformInt(5);      // 1..5

    data::DatasetSplits splits = data::MakeSplits(series, window);
    const int64_t start = rng.UniformInt(splits.test.size() - batch_size);
    const data::Batch batch = splits.test.GetRange(start, batch_size);
    const std::string tag = "iter " + std::to_string(iter) + ": " + name +
                            " B=" + std::to_string(batch_size) + " I=" +
                            std::to_string(window.input_len) + " L=" +
                            std::to_string(window.label_len) + " P=" +
                            std::to_string(window.pred_len);

    auto model = models::MakeForecaster(name, window, splits.test.dims(),
                                        {.seed = kFuzzSeed + iter})
                     .value();
    model->SetTraining(false);
    const Tensor eager = model->Predict(batch);

    Result<TraceResult> traced = CapturePredictPlan(BindPredict(*model),
                                                    batch);
    ASSERT_TRUE(traced.ok()) << tag << ": " << traced.status().ToString();
    PlanExecutor executor(traced.value().plan);
    ExpectTensorsBitwiseEqual(eager, traced.value().output, tag + " trace");
    ExpectTensorsBitwiseEqual(eager, executor.Run(batch), tag + " replay");
  }
}

// -- Injected mismatch must trip the per-node checker ----------------------

TEST(StaticRuntimeTest, InjectedCorruptionTripsPerNodeParity) {
  data::DatasetSplits splits = MakeTestSplits();
  const data::Batch batch = splits.test.GetRange(0, 2);
  auto model =
      models::MakeForecaster("gru", TestWindow(), splits.test.dims()).value();
  model->SetTraining(false);

  Result<TraceResult> traced = CapturePredictPlan(BindPredict(*model), batch);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  PlanExecutor executor(traced.value().plan);
  ASSERT_TRUE(VerifyParity(executor, BindPredict(*model), batch).ok());

  // Arm the fault on a mid-plan step: the checker must localize the first
  // divergence to exactly that step, not some downstream consumer.
  const int num_steps = static_cast<int>(executor.plan().steps().size());
  ASSERT_GT(num_steps, 2);
  const int target = num_steps / 2;
  // Plans are immutable in production; the test-only fault hook is the one
  // sanctioned mutation.
  Plan& plan = const_cast<Plan&>(executor.plan());
  plan.CorruptStepForTesting(target);

  ParityReport report = VerifyParity(executor, BindPredict(*model), batch);
  EXPECT_TRUE(report.structural_ok) << report.structural_error;
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.mismatches.empty());
  EXPECT_EQ(report.mismatches[0].step_index, target);
  EXPECT_EQ(report.mismatches[0].op_name,
            executor.plan().steps()[target].op_name);
  EXPECT_EQ(report.mismatches[0].flat_index, 0);

  plan.CorruptStepForTesting(-1);
  EXPECT_TRUE(VerifyParity(executor, BindPredict(*model), batch).ok());
}

// -- Arena plan invariants -------------------------------------------------

TEST(StaticRuntimeTest, PlannedOffsetsNeverAliasLiveRanges) {
  data::DatasetSplits splits = MakeTestSplits();
  const data::Batch batch = splits.test.GetRange(0, 3);
  auto model =
      models::MakeForecaster("conformer", TestWindow(), splits.test.dims())
          .value();
  model->SetTraining(false);

  Result<TraceResult> traced = CapturePredictPlan(BindPredict(*model), batch);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  const Plan& plan = *traced.value().plan;
  const std::vector<PlanSlot>& slots = plan.slots();

  int64_t planned_input_numel = 0;
  int64_t planned_activation_numel = 0;
  for (size_t i = 0; i < slots.size(); ++i) {
    const PlanSlot& a = slots[i];
    if (a.offset < 0) continue;
    EXPECT_EQ(a.offset % kArenaAlignFloats, 0) << "slot " << i;
    EXPECT_LE(a.offset + a.numel, plan.arena_numel()) << "slot " << i;
    if (a.kind == SlotKind::kInput) planned_input_numel += a.numel;
    if (a.kind == SlotKind::kActivation) planned_activation_numel += a.numel;

    // Two slots whose lifetimes overlap must occupy disjoint arena ranges.
    // Inputs are live from before step 0 (def_step -1) through last_use.
    for (size_t j = i + 1; j < slots.size(); ++j) {
      const PlanSlot& b = slots[j];
      if (b.offset < 0) continue;
      const bool lifetimes_overlap =
          !(a.last_use < b.def_step || b.last_use < a.def_step);
      if (!lifetimes_overlap) continue;
      const bool ranges_disjoint = a.offset + a.numel <= b.offset ||
                                   b.offset + b.numel <= a.offset;
      EXPECT_TRUE(ranges_disjoint)
          << "slots " << i << " and " << j << " alias: [" << a.offset << ", "
          << a.offset + a.numel << ") vs [" << b.offset << ", "
          << b.offset + b.numel << ") with overlapping lifetimes [" <<
          a.def_step << ", " << a.last_use << "] / [" << b.def_step << ", "
          << b.last_use << "]";
    }
  }

  // Liveness-based reuse must actually shrink the arena below the sum of
  // all activation buffers (conformer has hundreds of short-lived nodes).
  EXPECT_GT(plan.unshared_activation_numel(), 0);
  EXPECT_LT(plan.arena_numel() - planned_input_numel,
            plan.unshared_activation_numel());
  EXPECT_GT(planned_activation_numel, 0);
}

// -- Warm activation pool vs. plan arena -----------------------------------

TEST(StaticRuntimeTest, WarmBufferPoolAndPlanReplayDoNotInterfere) {
  data::DatasetSplits splits = MakeTestSplits();
  const data::Batch batch = splits.test.GetRange(0, 2);
  auto model =
      models::MakeForecaster("conformer", TestWindow(), splits.test.dims())
          .value();
  model->SetTraining(false);
  const Tensor reference = model->Predict(batch);

  ClearBufferPool();
  {
    // Warm the per-thread activation pool with eager runs, then trace and
    // replay while the pool still holds recycled buffers: the plan's pinned
    // constants and arena must not alias pooled storage in either direction.
    InferenceModeGuard guard;
    (void)model->Predict(batch);
    (void)model->Predict(batch);

    Result<TraceResult> traced = CapturePredictPlan(BindPredict(*model),
                                                    batch);
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    PlanExecutor executor(traced.value().plan);
    const Tensor replayed = executor.Run(batch);
    ExpectTensorsBitwiseEqual(reference, replayed, "replay under warm pool");

    // An eager run after replay recycles through the same pool; if replay
    // had retained or scribbled a pooled buffer this diverges (or trips
    // asan in the sanitizer job).
    const Tensor eager_after = model->Predict(batch);
    ExpectTensorsBitwiseEqual(reference, eager_after, "eager after replay");
    ExpectTensorsBitwiseEqual(reference, executor.Run(batch),
                              "replay after eager");
  }
  ClearBufferPool();
}

// -- Untraceable ops fall back instead of freezing wrong values ------------

TEST(StaticRuntimeTest, UncapturedOpConsumedByTraceFailsTheBuild) {
  // A raw MakeOpResult with no replay closure (stand-in for any future op
  // added without capture support): consuming its output must invalidate
  // the trace, not silently freeze the traced value into the plan.
  data::DatasetSplits splits = MakeTestSplits();
  const data::Batch batch = splits.test.GetRange(0, 1);

  auto predict = [](const data::Batch& b) {
    Tensor raw = internal::MakeOpResult(b.x.shape(), b.x.impl()->data, {b.x},
                                        nullptr, "TestRawOp");
    return Add(raw, b.x);
  };
  Result<TraceResult> traced = CapturePredictPlan(predict, batch);
  ASSERT_FALSE(traced.ok());
  EXPECT_NE(traced.status().ToString().find("TestRawOp"), std::string::npos)
      << traced.status().ToString();
}

// -- InferenceSession plan cache -------------------------------------------

TEST(StaticRuntimeSessionTest, PlanCacheServesBitwiseIdenticalForecasts) {
  data::DatasetSplits splits = MakeTestSplits();
  serve::SessionConfig config;
  config.model_name = "conformer";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  config.use_static_plan = true;
  auto session = serve::InferenceSession::Open(config, "");
  ASSERT_TRUE(session.ok());

  metrics::Registry& registry = metrics::Registry::Global();
  const int64_t builds_before =
      registry.GetCounter("serve.plan_builds").value();
  const int64_t hits_before = registry.GetCounter("serve.plan_hits").value();

  const data::Batch batch = splits.test.GetRange(0, 3);
  ASSERT_EQ(session.value()->plan_for(batch), nullptr);
  const Tensor first = session.value()->Predict(batch).point;   // trace
  ASSERT_NE(session.value()->plan_for(batch), nullptr);
  const Tensor second = session.value()->Predict(batch).point;  // replay
  const Tensor third = session.value()->Predict(batch).point;   // replay
  ExpectTensorsBitwiseEqual(first, second, "traced vs first replay");
  ExpectTensorsBitwiseEqual(first, third, "traced vs second replay");
  EXPECT_EQ(registry.GetCounter("serve.plan_builds").value() - builds_before,
            1);
  EXPECT_EQ(registry.GetCounter("serve.plan_hits").value() - hits_before, 2);

  // A new geometry misses the cache and compiles its own plan — never a
  // silent replay through the wrong-shape program.
  const data::Batch wider = splits.test.GetRange(0, 5);
  const Tensor wider_first = session.value()->Predict(wider).point;
  ASSERT_NE(session.value()->plan_for(wider), nullptr);
  EXPECT_NE(session.value()->plan_for(wider), session.value()->plan_for(batch));
  ExpectTensorsBitwiseEqual(wider_first, session.value()->Predict(wider).point,
                            "second geometry replay");
  EXPECT_EQ(registry.GetCounter("serve.plan_builds").value() - builds_before,
            2);

  // The parity-checked mode replays with per-node verification and serves
  // the same bits.
  serve::SessionConfig checked = config;
  checked.static_parity_check = true;
  auto checked_session = serve::InferenceSession::Open(checked, "");
  ASSERT_TRUE(checked_session.ok());
  const Tensor checked_first = checked_session.value()->Predict(batch).point;
  const Tensor checked_second = checked_session.value()->Predict(batch).point;
  ExpectTensorsBitwiseEqual(checked_first, checked_second,
                            "parity-checked replay");
}

// -- Concurrent replay (tsan) ----------------------------------------------

TEST(StaticRuntimeTsanTest, ConcurrentExecutorsShareOnePlan) {
  data::DatasetSplits splits = MakeTestSplits();
  const data::Batch batch = splits.test.GetRange(0, 2);
  auto model =
      models::MakeForecaster("gru", TestWindow(), splits.test.dims()).value();
  model->SetTraining(false);
  const Tensor reference = model->Predict(batch);

  Result<TraceResult> traced = CapturePredictPlan(BindPredict(*model), batch);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  std::shared_ptr<const Plan> plan = traced.value().plan;

  // The Plan is immutable and shared; each thread owns its executor (arena).
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 6;
  std::atomic<int> divergences{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      PlanExecutor executor(plan);
      for (int r = 0; r < kRunsPerThread; ++r) {
        if (!TensorsBitwiseEqual(reference, executor.Run(batch))) {
          divergences.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(divergences.load(), 0);
}

TEST(StaticRuntimeTsanTest, BatchingQueueDispatchesPlanReplayUnderLoad) {
  data::DatasetSplits splits = MakeTestSplits();
  serve::SessionConfig config;
  config.model_name = "gru";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  config.use_static_plan = true;
  auto session = serve::InferenceSession::Open(config, "");
  ASSERT_TRUE(session.ok());

  // Direct references first (these also populate the plan cache).
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 4;
  std::vector<Tensor> direct;
  for (int r = 0; r < kRequestsPerClient; ++r) {
    direct.push_back(
        session.value()->Predict(splits.test.GetRange(r, 1)).point);
  }

  // Client threads submit concurrently; the queue's dispatcher thread is
  // the only Predict caller, replaying the shared plan per micro-batch.
  serve::BatchingQueue queue(session.value().get(),
                             {.max_batch_size = 4,
                              .max_queue_delay_us = 2 * 1000});
  std::atomic<int> divergences{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        Result<serve::Forecast> forecast =
            queue.Submit(splits.test.GetRange(r, 1)).get();
        if (!forecast.ok() ||
            !TensorsBitwiseEqual(direct[r], forecast.value().point)) {
          divergences.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  queue.Shutdown();
  EXPECT_EQ(divergences.load(), 0);
}

}  // namespace
}  // namespace conformer::runtime
