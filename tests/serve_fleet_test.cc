// Multi-tenant fleet suite (docs/SERVING.md, "The model fleet"). Proves the
// fleet's isolation contract:
//   (a) the registry enforces the tenant-key contract and rejects duplicate
//       registration; Submit against an unregistered key resolves NotFound,
//   (b) micro-batching stays transparent per tenant — a request served
//       through the fleet is bitwise identical to the tenant session's own
//       Predict — including tenants with different horizons,
//   (c) Reload of one tenant leaves every other tenant's outputs bitwise
//       unchanged,
//   (d) a scoped fault injection (CONFORMER_SERVE_FAULTS ... scope=<key>)
//       trips only the target tenant's circuit breaker while the others
//       keep serving bitwise-identical forecasts,
//   (e) Shutdown() drains every tenant's queue (no accepted request lost),
//   (f) concurrent clients across tenants are race-free (tsan label), and
//   (g) the open-loop load generator's report tallies add up.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "baselines/registry.h"
#include "data/dataset_registry.h"
#include "serve/fault_injector.h"
#include "serve/fleet_server.h"
#include "serve/loadgen.h"
#include "serve/model_registry.h"
#include "train/checkpoint.h"
#include "train/trainer.h"

namespace conformer::serve {
namespace {

data::WindowConfig TestWindow(int64_t pred_len = 8) {
  return {.input_len = 24, .label_len = 8, .pred_len = pred_len};
}

data::TimeSeries TestSeries() {
  return data::MakeDataset("etth1", 0.05).value();
}

SessionConfig LinearConfig(int64_t dims, int64_t pred_len = 8) {
  SessionConfig config;
  config.model_name = "linear";
  config.window = TestWindow(pred_len);
  config.dims = dims;
  return config;
}

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = "/tmp/conformer_fleet_" + tag + "_" +
                          std::to_string(static_cast<int64_t>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b,
                               const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)), 0)
      << what << " differs";
}

bool WaitFor(const std::function<bool()>& pred, int64_t timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

struct GateGuard {
  GateGuard() { FaultInjector::SetPredictGate(true); }
  ~GateGuard() { FaultInjector::SetPredictGate(false); }
  void Open() { FaultInjector::SetPredictGate(false); }
};

struct InjectorGuard {
  explicit InjectorGuard(const FaultInjector::Config& config) {
    FaultInjector::Install(config);
  }
  ~InjectorGuard() { FaultInjector::Uninstall(); }
};

/// Trains a linear model briefly and publishes it as a checkpoint directory
/// (the reload-isolation fixture); returns the trained model in eval mode.
std::unique_ptr<models::Forecaster> PublishTrainedLinear(
    const data::DatasetSplits& splits, const std::string& dir) {
  auto model =
      models::MakeForecaster("linear", TestWindow(), splits.test.dims())
          .value();
  train::TrainConfig config;
  config.epochs = 1;
  config.max_train_batches = 4;
  config.max_eval_batches = 2;
  config.batch_size = 8;
  train::Trainer(config).Fit(model.get(), splits.train, splits.val);

  train::Adam optimizer(model->Parameters());
  train::TrainProgress progress;
  progress.global_step = 100;
  progress.epoch_rng_state = Rng(5).Serialize();
  train::CheckpointManager manager(dir);
  EXPECT_TRUE(manager.Save(*model, optimizer, progress).ok());
  model->SetTraining(false);
  return model;
}

// -- Tenant keys & registry -------------------------------------------------

TEST(TenantKeyTest, MakeTenantKeyFollowsTheContract) {
  EXPECT_EQ(MakeTenantKey("conformer", 16), "conformer@16");
  EXPECT_TRUE(ModelRegistry::ValidateKey(MakeTenantKey("linear", 96)).ok());
}

TEST(TenantKeyTest, ValidateKeyRejectsMalformedKeys) {
  EXPECT_TRUE(ModelRegistry::ValidateKey("conformer@16").ok());
  EXPECT_TRUE(ModelRegistry::ValidateKey("my-model_v2.1@720").ok());
  for (const std::string& bad : std::vector<std::string>{
           "", "conformer", "@16", "conformer@", "a@b@c", "con former@16",
           "conformer@16\n", std::string(70, 'a') + "@1"}) {
    EXPECT_EQ(ModelRegistry::ValidateKey(bad).code(),
              StatusCode::kInvalidArgument)
        << "\"" << bad << "\" should be rejected";
  }
}

TEST(ModelRegistryTest, RejectsDuplicateAndMalformedRegistration) {
  data::DatasetSplits splits = data::MakeSplits(TestSeries(), TestWindow());
  ModelRegistry registry;
  const SessionConfig config = LinearConfig(splits.test.dims());

  ASSERT_TRUE(registry.Register("linear@8", config, "").ok());
  EXPECT_EQ(registry.Register("linear@8", config, "").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Register("not a key", config, "").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.size(), 1);
  EXPECT_NE(registry.Find("linear@8"), nullptr);
  EXPECT_EQ(registry.Find("other@8"), nullptr);
  EXPECT_EQ(registry.Reload("other@8", "/nowhere").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.Keys(), std::vector<std::string>{"linear@8"});
}

TEST(ModelRegistryTest, StampsTenantKeyAsFaultScope) {
  data::DatasetSplits splits = data::MakeSplits(TestSeries(), TestWindow());
  ModelRegistry registry;
  ASSERT_TRUE(
      registry.Register("linear@8", LinearConfig(splits.test.dims()), "")
          .ok());
  EXPECT_EQ(registry.Find("linear@8")->config().fault_scope, "linear@8");
}

// -- Fleet routing ----------------------------------------------------------

TEST(FleetServerTest, SubmitToUnregisteredTenantResolvesNotFound) {
  data::DatasetSplits splits = data::MakeSplits(TestSeries(), TestWindow());
  FleetServer fleet;
  Result<Forecast> result =
      fleet.Submit("ghost@8", splits.test.GetRange(0, 1)).get();
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fleet.tenant_count(), 0);
}

TEST(FleetServerTest, AddTenantRejectsDuplicates) {
  data::DatasetSplits splits = data::MakeSplits(TestSeries(), TestWindow());
  FleetServer fleet;
  TenantSpec spec;
  spec.session = LinearConfig(splits.test.dims());
  ASSERT_TRUE(fleet.AddTenant("linear@8", spec).ok());
  EXPECT_EQ(fleet.AddTenant("linear@8", spec).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(fleet.tenant_count(), 1);
}

TEST(FleetServerTest, ServesMixedHorizonTenantsBatchTransparently) {
  data::TimeSeries series = TestSeries();
  data::DatasetSplits splits8 = data::MakeSplits(series, TestWindow(8));
  data::DatasetSplits splits16 = data::MakeSplits(series, TestWindow(16));

  FleetServer fleet({.num_dispatchers = 2});
  TenantSpec spec8;
  spec8.session = LinearConfig(splits8.test.dims(), 8);
  spec8.queue = {.max_batch_size = 4, .max_queue_delay_us = 200};
  TenantSpec spec16;
  spec16.session = LinearConfig(splits16.test.dims(), 16);
  spec16.queue = {.max_batch_size = 4, .max_queue_delay_us = 200};
  ASSERT_TRUE(fleet.AddTenant("linear@8", spec8).ok());
  ASSERT_TRUE(fleet.AddTenant("linear@16", spec16).ok());
  EXPECT_EQ(fleet.tenant_keys(),
            (std::vector<std::string>{"linear@16", "linear@8"}));

  // Interleaved submits to both horizons; every response must be bitwise
  // identical to the tenant session's own unbatched Predict.
  const int64_t kRequests = 8;
  std::vector<std::future<Result<Forecast>>> f8, f16;
  for (int64_t r = 0; r < kRequests; ++r) {
    f8.push_back(fleet.Submit("linear@8", splits8.test.GetRange(r, 1)));
    f16.push_back(fleet.Submit("linear@16", splits16.test.GetRange(r, 1)));
  }
  for (int64_t r = 0; r < kRequests; ++r) {
    Result<Forecast> got8 = f8[r].get();
    Result<Forecast> got16 = f16[r].get();
    ASSERT_TRUE(got8.ok()) << got8.status().message();
    ASSERT_TRUE(got16.ok()) << got16.status().message();
    EXPECT_EQ(got8.value().point.size(1), 8);
    EXPECT_EQ(got16.value().point.size(1), 16);
    ExpectTensorsBitwiseEqual(
        got8.value().point,
        fleet.session("linear@8")->Predict(splits8.test.GetRange(r, 1)).point,
        "linear@8 request " + std::to_string(r));
    ExpectTensorsBitwiseEqual(
        got16.value().point,
        fleet.session("linear@16")
            ->Predict(splits16.test.GetRange(r, 1))
            .point,
        "linear@16 request " + std::to_string(r));
  }
}

// -- Isolation --------------------------------------------------------------

TEST(FleetServerTest, ReloadTouchesOnlyTheTargetTenant) {
  data::DatasetSplits splits = data::MakeSplits(TestSeries(), TestWindow());
  const std::string dir = MakeTempDir("reload");
  std::unique_ptr<models::Forecaster> trained =
      PublishTrainedLinear(splits, dir);
  const data::Batch probe = splits.test.GetRange(0, 1);

  FleetServer fleet;
  TenantSpec spec;
  spec.session = LinearConfig(splits.test.dims());
  spec.queue = {.max_batch_size = 4, .max_queue_delay_us = 0};
  ASSERT_TRUE(fleet.AddTenant("linear-a@8", spec).ok());
  ASSERT_TRUE(fleet.AddTenant("linear-b@8", spec).ok());

  const Tensor b_before =
      fleet.Submit("linear-b@8", probe).get().value().point;

  // Reload A from the trained checkpoint: A now serves the trained
  // parameters, B is bitwise where it was.
  ASSERT_TRUE(fleet.Reload("linear-a@8", dir).ok());
  EXPECT_EQ(fleet.Reload("ghost@8", dir).code(), StatusCode::kNotFound);

  const Tensor a_after =
      fleet.Submit("linear-a@8", probe).get().value().point;
  const Tensor b_after =
      fleet.Submit("linear-b@8", probe).get().value().point;
  ExpectTensorsBitwiseEqual(a_after, trained->Predict(probe),
                            "reloaded tenant vs trained reference");
  ExpectTensorsBitwiseEqual(b_after, b_before,
                            "untouched tenant across neighbour reload");
  std::filesystem::remove_all(dir);
}

TEST(FleetServerTest, ScopedFaultTripsOnlyTheTargetTenantsBreaker) {
  data::DatasetSplits splits = data::MakeSplits(TestSeries(), TestWindow());
  const data::Batch probe = splits.test.GetRange(0, 1);

  FleetServer fleet({.num_dispatchers = 2});
  TenantSpec spec;
  spec.session = LinearConfig(splits.test.dims());
  spec.queue = {.max_batch_size = 4,
                .max_queue_delay_us = 0,
                .circuit_breaker_failures = 1};
  ASSERT_TRUE(fleet.AddTenant("linear-a@8", spec).ok());
  ASSERT_TRUE(fleet.AddTenant("linear-b@8", spec).ok());
  const Tensor a_baseline =
      fleet.Submit("linear-a@8", probe).get().value().point;
  const Tensor b_baseline =
      fleet.Submit("linear-b@8", probe).get().value().point;

  {
    // Every A Predict throws; B is out of scope and must not even be
    // counted by the injector.
    InjectorGuard injector({.throw_every = 1, .scope = "linear-a@8"});

    Result<Forecast> a_result = fleet.Submit("linear-a@8", probe).get();
    EXPECT_EQ(a_result.status().code(), StatusCode::kInternal);
    ASSERT_TRUE(WaitFor([&] { return fleet.circuit_open("linear-a@8"); }));
    EXPECT_FALSE(fleet.circuit_open("linear-b@8"));

    // A is breaker-rejected; B keeps serving bitwise-identical forecasts
    // with the injector still armed.
    EXPECT_EQ(fleet.Submit("linear-a@8", probe).get().status().code(),
              StatusCode::kUnavailable);
    Result<Forecast> b_result = fleet.Submit("linear-b@8", probe).get();
    ASSERT_TRUE(b_result.ok()) << b_result.status().message();
    ExpectTensorsBitwiseEqual(b_result.value().point, b_baseline,
                              "out-of-scope tenant under injected faults");
  }

  // Fault cleared: closing the breaker restores A.
  ASSERT_TRUE(fleet.ResetCircuitBreaker("linear-a@8").ok());
  EXPECT_EQ(fleet.ResetCircuitBreaker("ghost@8").code(),
            StatusCode::kNotFound);
  Result<Forecast> healed = fleet.Submit("linear-a@8", probe).get();
  ASSERT_TRUE(healed.ok()) << healed.status().message();
  ExpectTensorsBitwiseEqual(healed.value().point, a_baseline,
                            "healed tenant vs its pre-fault output");
}

// -- Shutdown ---------------------------------------------------------------

TEST(FleetServerTest, ShutdownDrainsEveryTenant) {
  data::DatasetSplits splits = data::MakeSplits(TestSeries(), TestWindow());
  auto fleet = std::make_unique<FleetServer>(FleetConfig{.num_dispatchers = 2});
  TenantSpec spec;
  spec.session = LinearConfig(splits.test.dims());
  spec.queue = {.max_batch_size = 2, .max_queue_delay_us = 100000};
  ASSERT_TRUE(fleet->AddTenant("linear-a@8", spec).ok());
  ASSERT_TRUE(fleet->AddTenant("linear-b@8", spec).ok());

  // Hold the dispatchers at the model boundary while requests pile up, so
  // Shutdown() races a genuinely backlogged fleet.
  GateGuard gate;
  std::vector<std::future<Result<Forecast>>> futures;
  for (int64_t r = 0; r < 6; ++r) {
    futures.push_back(
        fleet->Submit(r % 2 == 0 ? "linear-a@8" : "linear-b@8",
                      splits.test.GetRange(r, 1)));
  }
  std::thread closer([&] { fleet->Shutdown(); });
  gate.Open();
  closer.join();

  for (auto& future : futures) {
    Result<Forecast> result = future.get();
    EXPECT_TRUE(result.ok()) << result.status().message();
  }
  EXPECT_EQ(fleet->Submit("linear-a@8", splits.test.GetRange(0, 1))
                .get()
                .status()
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(fleet->AddTenant("linear-c@8", spec).code(),
            StatusCode::kUnavailable);
  fleet.reset();  // Double-shutdown via the destructor must be a no-op.
}

// -- Concurrency (tsan) -----------------------------------------------------

TEST(FleetServerTest, ConcurrentMultiTenantSubmitIsRaceFree) {
  data::DatasetSplits splits = data::MakeSplits(TestSeries(), TestWindow());
  const std::vector<std::string> keys = {"linear-a@8", "linear-b@8",
                                         "linear-c@8"};
  FleetServer fleet({.num_dispatchers = 3});
  TenantSpec spec;
  spec.session = LinearConfig(splits.test.dims());
  spec.queue = {.max_batch_size = 4, .max_queue_delay_us = 200};
  for (const std::string& key : keys) {
    ASSERT_TRUE(fleet.AddTenant(key, spec).ok());
  }
  // Freshly initialized models differ per instance, so references are
  // per-tenant: [tenant][row].
  std::vector<std::vector<Tensor>> reference(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    for (int64_t r = 0; r < 4; ++r) {
      reference[k].push_back(
          fleet.session(keys[k])->Predict(splits.test.GetRange(r, 1)).point);
    }
  }

  const int64_t kClients = 6;
  const int64_t kPerClient = 8;
  std::vector<std::thread> clients;
  for (int64_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<
          std::tuple<size_t, int64_t, std::future<Result<Forecast>>>>
          futures;
      for (int64_t r = 0; r < kPerClient; ++r) {
        const size_t tenant = static_cast<size_t>(c + r) % keys.size();
        const int64_t row = (c + r) % 4;
        futures.emplace_back(
            tenant, row,
            fleet.Submit(keys[tenant], splits.test.GetRange(row, 1)));
      }
      for (auto& [tenant, row, future] : futures) {
        Result<Forecast> result = future.get();
        ASSERT_TRUE(result.ok()) << result.status().message();
        ExpectTensorsBitwiseEqual(
            result.value().point, reference[tenant][row],
            "concurrent fleet " + keys[tenant] + " row " +
                std::to_string(row));
      }
    });
  }
  for (std::thread& client : clients) client.join();
  fleet.Shutdown();
}

// -- Load generator ---------------------------------------------------------

TEST(LoadgenTest, OpenLoopReportTalliesAddUp) {
  data::DatasetSplits splits = data::MakeSplits(TestSeries(), TestWindow());
  FleetServer fleet({.num_dispatchers = 2});
  TenantSpec spec;
  spec.session = LinearConfig(splits.test.dims());
  spec.queue = {.max_batch_size = 8, .max_queue_delay_us = 200};
  ASSERT_TRUE(fleet.AddTenant("linear-a@8", spec).ok());
  ASSERT_TRUE(fleet.AddTenant("linear-b@8", spec).ok());

  std::vector<TenantLoad> mix;
  mix.push_back({"linear-a@8", splits.test.GetRange(0, 1), 2.0});
  mix.push_back({"linear-b@8", splits.test.GetRange(1, 1), 1.0});
  LoadgenOptions options;
  options.offered_rps = 200.0;
  options.duration_seconds = 0.25;
  options.num_clients = 2;
  options.think_scale_us = 50.0;  // Exercise the heavy-tail path too.
  options.seed = 7;
  const LoadReport report = RunOpenLoop(fleet, mix, options);

  EXPECT_GE(report.wall_seconds, options.duration_seconds * 0.9);
  ASSERT_EQ(report.tenants.size(), 2u);
  int64_t issued = 0;
  for (const TenantLoadStats& tenant : report.tenants) {
    EXPECT_EQ(tenant.issued,
              tenant.ok + tenant.rejected + tenant.shed + tenant.failed)
        << tenant.key;
    issued += tenant.issued;
  }
  EXPECT_GT(issued, 0);
  EXPECT_GT(report.goodput_rps, 0.0);
  EXPECT_GT(report.achieved_rps, 0.0);
  // The 2:1 mix should actually skew traffic toward tenant a.
  EXPECT_GT(report.tenants[0].issued, report.tenants[1].issued);
  // A gentle load against a fast linear model delivers everything.
  for (const TenantLoadStats& tenant : report.tenants) {
    EXPECT_EQ(tenant.ok, tenant.issued) << tenant.key;
    EXPECT_GT(tenant.p50_ms, 0.0) << tenant.key;
    EXPECT_LE(tenant.p50_ms, tenant.p99_ms) << tenant.key;
  }

  // Empty/invalid option sets degrade to an empty report, not UB.
  EXPECT_EQ(RunOpenLoop(fleet, {}, options).tenants.size(), 0u);
  LoadgenOptions zero = options;
  zero.offered_rps = 0.0;
  EXPECT_EQ(RunOpenLoop(fleet, mix, zero).achieved_rps, 0.0);
}

}  // namespace
}  // namespace conformer::serve
