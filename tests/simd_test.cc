// Dispatch-identity suite for the runtime SIMD layer (tensor/vec, see
// docs/SIMD.md). The layer's contract is stronger than "close enough":
// every kernel is defined at a fixed logical width of 8 float lanes with a
// fixed horizontal-fold order, so results must be BITWISE IDENTICAL across
// every SIMD level available in this process. These tests memcmp raw span
// kernels, whole tensor graphs (forward AND gradients), and the double
// kernels behind util/linalg — at every tail length and unaligned offset —
// against the forced-scalar backend. CI's simd-matrix job re-runs the kernel
// suites under each forced CONFORMER_SIMD_LEVEL on top of this.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include "baselines/timesnet_lite.h"
#include "core/series_decomposition.h"
#include "data/window_dataset.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/vec/vec.h"
#include "util/linalg.h"
#include "util/thread_pool.h"

namespace conformer {
namespace {

using vec::SimdLevel;

constexpr int64_t kLanes = vec::kFloatLanes;

// Every test restores the ambient level (and single-thread pool) so test
// order never matters.
class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = vec::ActiveSimdLevel(); }
  void TearDown() override {
    ASSERT_TRUE(vec::SetSimdLevel(saved_));
    ThreadPool::Global().SetNumThreads(1);
  }

 private:
  SimdLevel saved_ = SimdLevel::kScalar;
};

// Non-scalar levels to compare against the scalar backend.
std::vector<SimdLevel> VectorLevels() {
  std::vector<SimdLevel> out;
  for (SimdLevel level : vec::AvailableSimdLevels()) {
    if (level != SimdLevel::kScalar) out.push_back(level);
  }
  return out;
}

// Deterministic input data: finite, sign-mixed, magnitude-mixed, never zero
// (safe as a divisor).
float TestValue(int64_t i) {
  const float base = static_cast<float>((i * 37 % 19) - 9) * 0.37f;
  return base + (base >= 0.0f ? 0.25f : -0.25f);
}

// Runs `fn` (which writes `n` floats through the currently active dispatch
// table into its argument) once per level and memcmps everything against
// the scalar backend's output.
void ExpectAllLevelsMatchScalar(
    int64_t n, const std::function<void(float*)>& fn, const char* what) {
  ASSERT_TRUE(vec::SetSimdLevel(SimdLevel::kScalar));
  std::vector<float> want(n, -123.0f);
  fn(want.data());
  for (SimdLevel level : VectorLevels()) {
    ASSERT_TRUE(vec::SetSimdLevel(level));
    std::vector<float> got(n, -123.0f);
    fn(got.data());
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(), sizeof(float) * n))
        << what << " differs between scalar and " << vec::SimdLevelName(level)
        << " at n=" << n;
  }
}

// -- level plumbing ---------------------------------------------------------

TEST_F(SimdTest, ParseSimdLevelNames) {
  EXPECT_EQ(vec::ParseSimdLevel("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(vec::ParseSimdLevel("sse2"), SimdLevel::kSse2);
  EXPECT_EQ(vec::ParseSimdLevel("avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(vec::ParseSimdLevel("neon"), SimdLevel::kNeon);
  EXPECT_EQ(vec::ParseSimdLevel("native"), vec::DetectedSimdLevel());
  EXPECT_FALSE(vec::ParseSimdLevel("AVX2").has_value());
  EXPECT_FALSE(vec::ParseSimdLevel("").has_value());
  EXPECT_FALSE(vec::ParseSimdLevel("avx512").has_value());
}

TEST_F(SimdTest, ScalarAlwaysAvailableAndRoundTrips) {
  const std::vector<SimdLevel> levels = vec::AvailableSimdLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kScalar);
  for (SimdLevel level : levels) {
    EXPECT_TRUE(vec::SetSimdLevel(level)) << vec::SimdLevelName(level);
    EXPECT_EQ(vec::ActiveSimdLevel(), level);
  }
}

TEST_F(SimdTest, SetSimdLevelRejectsUnavailable) {
  // At most one of NEON / AVX2 can exist in one process; the foreign
  // architecture's level must be rejected without changing the active one.
#if defined(__aarch64__)
  const SimdLevel foreign = SimdLevel::kAvx2;
#else
  const SimdLevel foreign = SimdLevel::kNeon;
#endif
  const SimdLevel before = vec::ActiveSimdLevel();
  EXPECT_FALSE(vec::SetSimdLevel(foreign));
  EXPECT_EQ(vec::ActiveSimdLevel(), before);
}

TEST_F(SimdTest, DetectedLevelIsStrongestAvailable) {
  EXPECT_EQ(vec::DetectedSimdLevel(), vec::AvailableSimdLevels().back());
}

// -- raw span kernels: tail sweep at every length and offset ----------------

// Lengths covering every remainder class twice plus multi-vector spans.
std::vector<int64_t> SweepLengths() {
  std::vector<int64_t> lengths;
  for (int64_t n = 0; n <= 2 * kLanes; ++n) lengths.push_back(n);
  lengths.insert(lengths.end(), {3 * kLanes + 1, 5 * kLanes + 7, 129});
  return lengths;
}

TEST_F(SimdTest, BinaryKernelTailSweep) {
  struct Case {
    const char* name;
    void (*fn)(const float*, const float*, float*, int64_t);
  };
  const Case cases[] = {{"AddN", vec::AddN},   {"SubN", vec::SubN},
                        {"MulN", vec::MulN},   {"DivN", vec::DivN},
                        {"MaxN", vec::MaxN}};
  for (const Case& c : cases) {
    for (int64_t n : SweepLengths()) {
      // Offsets 0..3 de-align the inputs from any 16/32-byte boundary.
      for (int64_t off = 0; off < 4; ++off) {
        std::vector<float> a(off + n), b(off + n);
        for (int64_t i = 0; i < off + n; ++i) {
          a[i] = TestValue(i);
          b[i] = TestValue(i + 101);
        }
        ExpectAllLevelsMatchScalar(
            n, [&](float* o) { c.fn(a.data() + off, b.data() + off, o, n); },
            c.name);
      }
    }
  }
}

TEST_F(SimdTest, UnaryKernelTailSweep) {
  struct Case {
    const char* name;
    std::function<void(const float*, float*, int64_t)> fn;
  };
  const Case cases[] = {
      {"ReluN", vec::ReluN},
      {"AbsN", vec::AbsN},
      {"ExpN", vec::ExpN},
      {"SigmoidN", vec::SigmoidN},
      {"AddScalarN",
       [](const float* a, float* o, int64_t n) {
         vec::AddScalarN(a, 0.75f, o, n);
       }},
      {"MulScalarN",
       [](const float* a, float* o, int64_t n) {
         vec::MulScalarN(a, -1.5f, o, n);
       }},
      {"ClampN",
       [](const float* a, float* o, int64_t n) {
         vec::ClampN(a, -1.0f, 2.0f, o, n);
       }},
      {"SqrtN",
       [](const float* a, float* o, int64_t n) {
         // Sqrt needs non-negative input; shift into [0.25, ...).
         std::vector<float> nn(n);
         for (int64_t i = 0; i < n; ++i) nn[i] = std::fabs(a[i]) + 0.25f;
         vec::SqrtN(nn.data(), o, n);
       }},
      {"SoftmaxRowN", vec::SoftmaxRowN},
      {"LogSoftmaxRowN", vec::LogSoftmaxRowN},
  };
  for (const Case& c : cases) {
    const bool row_kernel = std::strcmp(c.name, "SoftmaxRowN") == 0 ||
                            std::strcmp(c.name, "LogSoftmaxRowN") == 0;
    for (int64_t n : SweepLengths()) {
      if (n == 0 && row_kernel) continue;  // row kernels need n >= 1
      for (int64_t off = 0; off < 4; ++off) {
        std::vector<float> a(off + n);
        for (int64_t i = 0; i < off + n; ++i) a[i] = TestValue(i);
        ExpectAllLevelsMatchScalar(
            n, [&](float* o) { c.fn(a.data() + off, o, n); }, c.name);
      }
    }
  }
}

TEST_F(SimdTest, AccumulateAndReduceKernelTailSweep) {
  for (int64_t n : SweepLengths()) {
    for (int64_t off = 0; off < 4; ++off) {
      std::vector<float> x(off + n), y(off + n);
      for (int64_t i = 0; i < off + n; ++i) {
        x[i] = TestValue(i);
        y[i] = TestValue(i + 53);
      }
      ExpectAllLevelsMatchScalar(
          n,
          [&](float* o) {
            for (int64_t i = 0; i < n; ++i) o[i] = y[off + i];
            vec::MulAddN(x.data() + off, 1.375f, o, n);
          },
          "MulAddN");
      // Scalar-result reductions: compare through a 3-float output buffer.
      ExpectAllLevelsMatchScalar(
          3,
          [&](float* o) {
            o[0] = vec::DotN(x.data() + off, y.data() + off, n);
            o[1] = vec::SumN(x.data() + off, n);
            o[2] = n > 0 ? vec::MaxReduceN(x.data() + off, n) : 0.0f;
          },
          "DotN/SumN/MaxReduceN");
    }
  }
}

TEST_F(SimdTest, MovingAvgKernelTailSweep) {
  // Odd window widths and output lengths around the lane width.
  for (int64_t kernel : {1, 2, 3, 7, 25}) {
    for (int64_t out_len : SweepLengths()) {
      if (out_len == 0) continue;
      const int64_t len = out_len + kernel - 1;
      std::vector<float> row(len);
      for (int64_t i = 0; i < len; ++i) row[i] = TestValue(i);
      const float inv_k = 1.0f / static_cast<float>(kernel);
      ExpectAllLevelsMatchScalar(
          out_len,
          [&](float* o) { vec::MovingAvgN(row.data(), out_len, kernel, inv_k, o); },
          "MovingAvgN");
      // Cross-check against the plain sequential functor: the moving-average
      // kernel is bitwise-reproducible even against naive scalar code.
      ASSERT_TRUE(vec::SetSimdLevel(vec::DetectedSimdLevel()));
      std::vector<float> got(out_len);
      vec::MovingAvgN(row.data(), out_len, kernel, inv_k, got.data());
      for (int64_t j = 0; j < out_len; ++j) {
        float acc = 0.0f;
        for (int64_t t = 0; t < kernel; ++t) acc += row[j + t];
        ASSERT_EQ(got[j], acc * inv_k) << "j=" << j << " kernel=" << kernel;
      }
    }
  }
}

TEST_F(SimdTest, DoubleKernelTailSweep) {
  for (int64_t n : SweepLengths()) {
    for (int64_t off = 0; off < 4; ++off) {
      std::vector<double> x(off + n), y(off + n);
      for (int64_t i = 0; i < off + n; ++i) {
        x[i] = static_cast<double>(TestValue(i));
        y[i] = static_cast<double>(TestValue(i + 71));
      }
      ASSERT_TRUE(vec::SetSimdLevel(SimdLevel::kScalar));
      const double want_dot = vec::DdotN(x.data() + off, y.data() + off, n);
      std::vector<double> want_axpy(y.begin() + off, y.end());
      vec::DmulAddN(x.data() + off, 0.625, want_axpy.data(), n);
      for (SimdLevel level : VectorLevels()) {
        ASSERT_TRUE(vec::SetSimdLevel(level));
        const double got_dot = vec::DdotN(x.data() + off, y.data() + off, n);
        EXPECT_EQ(0, std::memcmp(&want_dot, &got_dot, sizeof(double)))
            << "DdotN " << vec::SimdLevelName(level) << " n=" << n;
        std::vector<double> got_axpy(y.begin() + off, y.end());
        vec::DmulAddN(x.data() + off, 0.625, got_axpy.data(), n);
        EXPECT_EQ(0, std::memcmp(want_axpy.data(), got_axpy.data(),
                                 sizeof(double) * n))
            << "DmulAddN " << vec::SimdLevelName(level) << " n=" << n;
      }
    }
  }
}

// -- exactness against plain scalar code ------------------------------------

// Kernels documented as bitwise-equal to the naive per-element expression
// (not just equal across levels) must match it at the detected level.
TEST_F(SimdTest, ArithmeticKernelsMatchNaiveExpressions) {
  ASSERT_TRUE(vec::SetSimdLevel(vec::DetectedSimdLevel()));
  const int64_t n = 2 * kLanes + 5;
  std::vector<float> a(n), b(n), o(n);
  for (int64_t i = 0; i < n; ++i) {
    a[i] = TestValue(i);
    b[i] = TestValue(i + 17);
  }
  vec::AddN(a.data(), b.data(), o.data(), n);
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(o[i], a[i] + b[i]);
  vec::DivN(a.data(), b.data(), o.data(), n);
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(o[i], a[i] / b[i]);
  vec::MaxN(a.data(), b.data(), o.data(), n);
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(o[i], a[i] >= b[i] ? a[i] : b[i]);
  vec::ReluN(a.data(), o.data(), n);
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(o[i], a[i] > 0.0f ? a[i] : 0.0f);
  std::vector<float> pos(n);
  for (int64_t i = 0; i < n; ++i) pos[i] = std::fabs(a[i]);
  vec::SqrtN(pos.data(), o.data(), n);
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(o[i], std::sqrt(pos[i]));
  std::vector<float> acc(b);
  vec::MulAddN(a.data(), 2.5f, acc.data(), n);
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(acc[i], b[i] + 2.5f * a[i]);
}

TEST_F(SimdTest, ExpAccuracyAgainstLibm) {
  ASSERT_TRUE(vec::SetSimdLevel(vec::DetectedSimdLevel()));
  // Dense sweep over the interesting range plus the clamp boundaries.
  std::vector<float> xs;
  for (float x = -87.0f; x <= 88.0f; x += 0.3137f) xs.push_back(x);
  xs.insert(xs.end(), {0.0f, -0.0f, 1.0f, -1.0f, -100.0f, 200.0f});
  std::vector<float> got(xs.size());
  vec::ExpN(xs.data(), got.data(), static_cast<int64_t>(xs.size()));
  for (size_t i = 0; i < xs.size(); ++i) {
    const double want = std::exp(static_cast<double>(xs[i]));
    if (xs[i] > 88.4f) {
      // Above the clamp: saturates near FLT_MAX instead of inf.
      EXPECT_GT(got[i], 1e38f) << "x=" << xs[i];
      continue;
    }
    if (xs[i] < -87.3f) {
      // Below the clamp: tiny but nonzero instead of flushing to 0.
      EXPECT_LT(got[i], 2e-38f) << "x=" << xs[i];
      continue;
    }
    EXPECT_NEAR(got[i] / want, 1.0, 1e-6) << "x=" << xs[i];
  }
  // exp(0) must be exactly 1 (Softmax on a length-1 dim returns exactly 1).
  float one = 0.0f;
  const float zero = 0.0f;
  vec::ExpN(&zero, &one, 1);
  EXPECT_EQ(one, 1.0f);
}

TEST_F(SimdTest, SigmoidAccuracyAndSymmetry) {
  ASSERT_TRUE(vec::SetSimdLevel(vec::DetectedSimdLevel()));
  std::vector<float> xs;
  for (float x = -30.0f; x <= 30.0f; x += 0.217f) xs.push_back(x);
  std::vector<float> got(xs.size());
  vec::SigmoidN(xs.data(), got.data(), static_cast<int64_t>(xs.size()));
  for (size_t i = 0; i < xs.size(); ++i) {
    const double want = 1.0 / (1.0 + std::exp(-static_cast<double>(xs[i])));
    EXPECT_NEAR(got[i], want, 1e-6) << "x=" << xs[i];
  }
}

TEST_F(SimdTest, SoftmaxRowMatchesReferenceWithinTolerance) {
  ASSERT_TRUE(vec::SetSimdLevel(vec::DetectedSimdLevel()));
  const int64_t n = 37;
  std::vector<float> x(n), y(n);
  for (int64_t i = 0; i < n; ++i) x[i] = TestValue(i) * 2.0f;
  vec::SoftmaxRowN(x.data(), y.data(), n);
  double total = 0.0;
  float mx = x[0];
  for (float v : x) mx = std::max(mx, v);
  std::vector<double> ref(n);
  for (int64_t i = 0; i < n; ++i) {
    ref[i] = std::exp(static_cast<double>(x[i] - mx));
    total += ref[i];
  }
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], ref[i] / total, 1e-6) << "i=" << i;
    sum += y[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

// -- Gemm: every transpose variant, every shape class, every level ----------

TEST_F(SimdTest, GemmAllVariantsBitwiseAcrossLevels) {
  const int64_t sizes[] = {1, 2, 3, 5, 8, 9, 16, 17, 33};
  for (bool trans_a : {false, true}) {
    for (bool trans_b : {false, true}) {
      for (int64_t m : sizes) {
        for (int64_t n : sizes) {
          for (int64_t k : sizes) {
            // Skip the bulk of the cube to keep runtime sane: exercise all
            // shapes where any dim is a tail case plus a few big ones.
            if (m > 9 && n > 9 && k > 9 && !(m == n && n == k)) continue;
            std::vector<float> a(m * k), b(k * n);
            for (size_t i = 0; i < a.size(); ++i) a[i] = TestValue(i);
            for (size_t i = 0; i < b.size(); ++i) b[i] = TestValue(i + 7);
            // Sprinkle zeros to exercise the zero-skip fast path.
            for (size_t i = 0; i < a.size(); i += 5) a[i] = 0.0f;
            ExpectAllLevelsMatchScalar(
                m * n,
                [&](float* c) {
                  kernels::Gemm(trans_a, trans_b, m, n, k, a.data(), b.data(),
                                c, /*accumulate=*/false);
                },
                "Gemm");
          }
        }
      }
    }
  }
}

// -- whole tensor graphs: forward and gradients across levels ---------------

// Runs forward+backward once per level; memcmps outputs and every gradient
// against the scalar-level run.
void ExpectGraphIdenticalAcrossLevels(
    const std::function<Tensor(const std::vector<Tensor>&)>& f,
    const std::vector<Shape>& shapes, const char* what) {
  auto run = [&]() {
    std::vector<Tensor> inputs;
    for (size_t i = 0; i < shapes.size(); ++i) {
      Rng rng(1000 + i);
      Tensor t = Tensor::Randn(shapes[i], &rng);
      t.set_requires_grad(true);
      inputs.push_back(t);
    }
    Tensor out = f(inputs);
    Sum(Mul(out, out)).Backward();
    std::vector<Tensor> results = {out};
    for (const Tensor& in : inputs) results.push_back(in.grad());
    return results;
  };
  ASSERT_TRUE(vec::SetSimdLevel(SimdLevel::kScalar));
  const std::vector<Tensor> want = run();
  for (SimdLevel level : VectorLevels()) {
    ASSERT_TRUE(vec::SetSimdLevel(level));
    const std::vector<Tensor> got = run();
    ASSERT_EQ(want.size(), got.size());
    for (size_t t = 0; t < want.size(); ++t) {
      ASSERT_EQ(want[t].shape(), got[t].shape());
      EXPECT_EQ(0, std::memcmp(want[t].data(), got[t].data(),
                               sizeof(float) * want[t].numel()))
          << what << " tensor " << t << ": scalar vs "
          << vec::SimdLevelName(level);
    }
  }
}

TEST_F(SimdTest, ElementwiseGraphAcrossLevels) {
  ExpectGraphIdenticalAcrossLevels(
      [](const std::vector<Tensor>& in) {
        Tensor h = Mul(Add(in[0], in[1]), Sub(in[0], in[1]));
        h = Div(h, AddScalar(Abs(in[1]), 1.0f));
        return Maximum(h, MulScalar(in[0], 0.125f));
      },
      {{5, 33}, {5, 33}}, "elementwise");
}

TEST_F(SimdTest, ActivationGraphAcrossLevels) {
  ExpectGraphIdenticalAcrossLevels(
      [](const std::vector<Tensor>& in) {
        Tensor h = Relu(in[0]);
        h = Add(h, Sigmoid(in[0]));
        h = Add(h, Exp(Clamp(in[0], -3.0f, 3.0f)));
        return Add(h, Sqrt(AddScalar(Abs(in[0]), 0.5f)));
      },
      {{7, 19}}, "activations");
}

TEST_F(SimdTest, MatMulAndSoftmaxGraphAcrossLevels) {
  ExpectGraphIdenticalAcrossLevels(
      [](const std::vector<Tensor>& in) {
        Tensor scores = MatMul(in[0], in[1]);
        return MatMul(Softmax(scores, -1), in[2]);
      },
      {{4, 9}, {9, 13}, {13, 6}}, "matmul+softmax");
}

TEST_F(SimdTest, LogSoftmaxAndReduceGraphAcrossLevels) {
  ExpectGraphIdenticalAcrossLevels(
      [](const std::vector<Tensor>& in) {
        Tensor l = LogSoftmax(in[0], -1);
        return Sum(l, {-1}, /*keepdim=*/true);
      },
      {{6, 21}}, "logsoftmax+sum");
}

TEST_F(SimdTest, SeriesDecompositionAcrossLevels) {
  // The SIRN moving-average path: DecomposeSeries → ReplicatePad →
  // AvgPool1d (stride 1 → vec::MovingAvgN).
  ExpectGraphIdenticalAcrossLevels(
      [](const std::vector<Tensor>& in) {
        core::Decomposition d = core::DecomposeSeries(in[0], /*kernel=*/25);
        return Add(d.trend, MulScalar(d.seasonal, 0.5f));
      },
      {{2, 40, 3}}, "series-decomposition");
}

TEST_F(SimdTest, Conv2dGraphAcrossLevels) {
  ExpectGraphIdenticalAcrossLevels(
      [](const std::vector<Tensor>& in) {
        return Conv2d(in[0], in[1], in[2], /*padding_h=*/1, /*padding_w=*/1);
      },
      {{2, 3, 6, 5}, {4, 3, 3, 3}, {4}}, "conv2d");
}

TEST_F(SimdTest, StridedConv1dGraphAcrossLevels) {
  ExpectGraphIdenticalAcrossLevels(
      [](const std::vector<Tensor>& in) {
        return Conv1d(in[0], in[1], in[2], /*padding=*/1, PadMode::kZeros,
                      /*dilation=*/1, /*stride=*/2);
      },
      {{2, 3, 33}, {4, 3, 3}, {4}}, "strided-conv1d");
}

TEST_F(SimdTest, TimesNetLiteForwardBackwardAcrossLevels) {
  // The whole period-adaptive path (host FFT selection + grid convs) must
  // produce identical forecasts and parameter gradients at every level.
  models::TimesNetLite model({.input_len = 24, .label_len = 8, .pred_len = 8},
                             /*dims=*/2, /*d_model=*/8, /*top_k=*/3);
  auto run = [&] {
    model.ZeroGrad();
    data::Batch batch;
    Rng rng(311);
    batch.x = Tensor::Randn({2, 24, 2}, &rng);
    Tensor out = model.Forward(batch);
    Sum(Mul(out, out)).Backward();
    std::vector<Tensor> results = {out};
    for (Tensor& p : model.Parameters()) results.push_back(p.grad().Clone());
    return results;
  };
  ASSERT_TRUE(vec::SetSimdLevel(SimdLevel::kScalar));
  const std::vector<Tensor> want = run();
  for (SimdLevel level : VectorLevels()) {
    ASSERT_TRUE(vec::SetSimdLevel(level));
    const std::vector<Tensor> got = run();
    ASSERT_EQ(want.size(), got.size());
    for (size_t t = 0; t < want.size(); ++t) {
      ASSERT_EQ(want[t].shape(), got[t].shape());
      EXPECT_EQ(0, std::memcmp(want[t].data(), got[t].data(),
                               sizeof(float) * want[t].numel()))
          << "timesnet tensor " << t << ": scalar vs "
          << vec::SimdLevelName(level);
    }
  }
}

TEST_F(SimdTest, RidgeLeastSquaresIdenticalAcrossLevels) {
  const int64_t rows = 29, features = 11, outputs = 3;
  std::vector<double> x(rows * features), y(rows * outputs);
  for (size_t i = 0; i < x.size(); ++i) x[i] = TestValue(i) * 0.5;
  for (size_t i = 0; i < y.size(); ++i) y[i] = TestValue(i + 13);
  ASSERT_TRUE(vec::SetSimdLevel(SimdLevel::kScalar));
  auto want = RidgeLeastSquares(x, rows, features, y, outputs, 1e-3);
  ASSERT_TRUE(want.ok());
  for (SimdLevel level : VectorLevels()) {
    ASSERT_TRUE(vec::SetSimdLevel(level));
    auto got = RidgeLeastSquares(x, rows, features, y, outputs, 1e-3);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(0, std::memcmp(want.value().data(), got.value().data(),
                             sizeof(double) * want.value().size()))
        << "RidgeLeastSquares scalar vs " << vec::SimdLevelName(level);
  }
}

// -- dispatch under the thread pool (tsan-labeled binary) -------------------

// At every level, the vectorized kernels must preserve the PR-1 contract:
// bitwise identical results at 1 thread and at 8 threads (vectorization
// happens within ParallelFor chunks, never across them).
TEST_F(SimdTest, ThreadCountInvarianceAtEveryLevel) {
  for (SimdLevel level : vec::AvailableSimdLevels()) {
    ASSERT_TRUE(vec::SetSimdLevel(level));
    auto run = [&]() {
      Rng rng(42);
      Tensor a = Tensor::Randn({64, 130}, &rng);
      Tensor b = Tensor::Randn({130, 48}, &rng);
      a.set_requires_grad(true);
      b.set_requires_grad(true);
      Tensor out = Softmax(MatMul(a, b), -1);
      out = Add(out, Sigmoid(out));
      Sum(Mul(out, out)).Backward();
      return std::vector<Tensor>{out, a.grad(), b.grad()};
    };
    ThreadPool::Global().SetNumThreads(1);
    const std::vector<Tensor> single = run();
    ThreadPool::Global().SetNumThreads(8);
    const std::vector<Tensor> multi = run();
    for (size_t t = 0; t < single.size(); ++t) {
      ASSERT_EQ(0, std::memcmp(single[t].data(), multi[t].data(),
                               sizeof(float) * single[t].numel()))
          << "tensor " << t << " at level " << vec::SimdLevelName(level);
    }
    ThreadPool::Global().SetNumThreads(1);
  }
}

// Concurrent reads of the dispatch table from pool workers (tsan coverage
// for the relaxed-atomic table load on every span call).
TEST_F(SimdTest, ConcurrentDispatchReadsAreClean) {
  ASSERT_TRUE(vec::SetSimdLevel(vec::DetectedSimdLevel()));
  ThreadPool::Global().SetNumThreads(8);
  const int64_t n = 1 << 16;
  std::vector<float> a(n), b(n), o(n);
  for (int64_t i = 0; i < n; ++i) {
    a[i] = TestValue(i);
    b[i] = TestValue(i + 3);
  }
  ParallelFor(0, n, 1 << 10, [&](int64_t cb, int64_t ce) {
    vec::AddN(a.data() + cb, b.data() + cb, o.data() + cb, ce - cb);
  });
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(o[i], a[i] + b[i]);
}

}  // namespace
}  // namespace conformer
