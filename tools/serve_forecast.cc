// Serving CLI (docs/SERVING.md): restores a checkpoint into an
// InferenceSession, replays a request stream from a dataset (synthetic by
// name, or a CSV) through the micro-batching queue with several client
// threads, prints a latency/throughput summary, and dumps the process
// metrics registry as JSON.
//
//   serve_forecast --dataset etth1 --checkpoint ckpt-dir --train-if-missing
//       --requests 64 --max-batch 8 --delay-us 2000 --metrics-out metrics.json
//
// Resilience knobs (docs/SERVING.md, "Overload & failure policy"):
// --max-queue-depth bounds admission, --deadline-ms attaches a deadline to
// every request (expired ones are shed before the model runs), and
// --reload-every-n hot-reloads the checkpoint mid-stream to exercise the
// atomic swap under client load. The summary reports delivered / shed /
// rejected counts and rates.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/csv_loader.h"
#include "data/dataset_registry.h"
#include "serve/batching_queue.h"
#include "serve/stats.h"
#include "train/trainer.h"
#include "util/binary_io.h"
#include "util/metrics.h"

namespace conformer {
namespace {

struct Options {
  std::string model = "conformer";
  std::string dataset = "etth1";
  std::string csv;
  std::string checkpoint;
  std::string metrics_out;
  bool train_if_missing = false;
  int64_t requests = 64;
  int64_t client_threads = 4;
  int64_t max_batch = 8;
  int64_t delay_us = 2000;
  int64_t max_queue_depth = 0;
  int64_t deadline_ms = 0;
  int64_t reload_every_n = 0;
  int64_t breaker = 0;
  int64_t quantile_samples = 0;
  double coverage = 0.9;
  bool static_plan = false;
  bool parity_check = false;
  int64_t input_len = 32;
  int64_t label_len = 16;
  int64_t pred_len = 16;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: serve_forecast [options]\n"
      "  --model NAME          registry model (default conformer)\n"
      "  --dataset NAME        synthetic dataset name (default etth1)\n"
      "  --csv FILE            serve a CSV instead of a synthetic dataset\n"
      "  --checkpoint PATH     checkpoint file or directory (empty: serve\n"
      "                        the untrained model)\n"
      "  --train-if-missing    train briefly and checkpoint into\n"
      "                        --checkpoint when it has no MANIFEST yet\n"
      "  --requests N          total requests to replay (default 64)\n"
      "  --clients N           concurrent client threads (default 4)\n"
      "  --max-batch N         micro-batch size cap (default 8)\n"
      "  --delay-us N          max queueing delay per batch (default 2000)\n"
      "  --max-queue-depth N   bounded admission: reject once N requests\n"
      "                        wait (default 0 = unbounded)\n"
      "  --deadline-ms N       per-request deadline; expired requests are\n"
      "                        shed before the model runs (default 0 = none)\n"
      "  --reload-every-n N    hot-reload --checkpoint after every N\n"
      "                        submissions (default 0 = never)\n"
      "  --breaker N           open the circuit after N consecutive failed\n"
      "                        batches (default 0 = disabled)\n"
      "  --quantile-samples N  flow samples per request for a quantile band\n"
      "  --coverage C          band coverage (default 0.9)\n"
      "  --static-plan         serve point forecasts through the static\n"
      "                        runtime (docs/STATIC_RUNTIME.md)\n"
      "  --parity-check        verify every replay per node against the\n"
      "                        eager path (debug; implies --static-plan)\n"
      "  --input-len/--label-len/--pred-len N   window geometry (32/16/16)\n"
      "  --metrics-out FILE    write the metrics registry JSON here\n");
}

bool ParseInt(const char* value, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(value, &end, 10);
  return end != value && *end == '\0';
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--train-if-missing") {
      opts->train_if_missing = true;
    } else if (arg == "--static-plan") {
      opts->static_plan = true;
    } else if (arg == "--parity-check") {
      opts->static_plan = true;
      opts->parity_check = true;
    } else if (arg == "--model" && (v = next())) {
      opts->model = v;
    } else if (arg == "--dataset" && (v = next())) {
      opts->dataset = v;
    } else if (arg == "--csv" && (v = next())) {
      opts->csv = v;
    } else if (arg == "--checkpoint" && (v = next())) {
      opts->checkpoint = v;
    } else if (arg == "--metrics-out" && (v = next())) {
      opts->metrics_out = v;
    } else if (arg == "--coverage" && (v = next())) {
      opts->coverage = std::atof(v);
    } else if (arg == "--requests" && (v = next())) {
      if (!ParseInt(v, &opts->requests)) return false;
    } else if (arg == "--clients" && (v = next())) {
      if (!ParseInt(v, &opts->client_threads)) return false;
    } else if (arg == "--max-batch" && (v = next())) {
      if (!ParseInt(v, &opts->max_batch)) return false;
    } else if (arg == "--delay-us" && (v = next())) {
      if (!ParseInt(v, &opts->delay_us)) return false;
    } else if (arg == "--max-queue-depth" && (v = next())) {
      if (!ParseInt(v, &opts->max_queue_depth)) return false;
    } else if (arg == "--deadline-ms" && (v = next())) {
      if (!ParseInt(v, &opts->deadline_ms)) return false;
    } else if (arg == "--reload-every-n" && (v = next())) {
      if (!ParseInt(v, &opts->reload_every_n)) return false;
    } else if (arg == "--breaker" && (v = next())) {
      if (!ParseInt(v, &opts->breaker)) return false;
    } else if (arg == "--quantile-samples" && (v = next())) {
      if (!ParseInt(v, &opts->quantile_samples)) return false;
    } else if (arg == "--input-len" && (v = next())) {
      if (!ParseInt(v, &opts->input_len)) return false;
    } else if (arg == "--label-len" && (v = next())) {
      if (!ParseInt(v, &opts->label_len)) return false;
    } else if (arg == "--pred-len" && (v = next())) {
      if (!ParseInt(v, &opts->pred_len)) return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n",
                   arg.c_str());
      return false;
    }
  }
  return opts->requests > 0 && opts->client_threads > 0;
}

int Main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 2;
  }

  // -- Data ---------------------------------------------------------------
  Result<data::TimeSeries> series =
      opts.csv.empty() ? data::MakeDataset(opts.dataset, 0.08)
                       : data::LoadCsv(opts.csv);
  if (!series.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 series.status().ToString().c_str());
    return 1;
  }
  const data::WindowConfig window{.input_len = opts.input_len,
                                  .label_len = opts.label_len,
                                  .pred_len = opts.pred_len};
  data::DatasetSplits splits = data::MakeSplits(series.value(), window);

  // -- Optional bootstrap training ---------------------------------------
  if (opts.train_if_missing && !opts.checkpoint.empty() &&
      !io::FileExists(opts.checkpoint + "/MANIFEST")) {
    std::fprintf(stderr, "[serve_forecast] no checkpoint at %s; training...\n",
                 opts.checkpoint.c_str());
    Result<std::unique_ptr<models::Forecaster>> model =
        models::MakeForecaster(opts.model, window, series.value().dims());
    if (!model.ok()) {
      std::fprintf(stderr, "unknown model: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    train::TrainConfig train_config;
    train_config.epochs = 2;
    train_config.max_train_batches = 32;
    train_config.max_eval_batches = 8;
    train_config.learning_rate = 2e-3f;
    train_config.checkpoint_dir = opts.checkpoint;
    train::Trainer(train_config).Fit(model.value().get(), splits.train,
                                     splits.val);
  }

  // -- Session + queue ----------------------------------------------------
  serve::SessionConfig session_config;
  session_config.model_name = opts.model;
  session_config.window = window;
  session_config.dims = series.value().dims();
  session_config.quantile_samples = opts.quantile_samples;
  session_config.coverage = opts.coverage;
  session_config.use_static_plan = opts.static_plan;
  session_config.static_parity_check = opts.parity_check;
  Result<std::unique_ptr<serve::InferenceSession>> session =
      serve::InferenceSession::Open(session_config, opts.checkpoint);
  if (!session.ok()) {
    std::fprintf(stderr, "failed to open session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  serve::QueueConfig queue_config{
      .max_batch_size = opts.max_batch,
      .max_queue_delay_us = opts.delay_us,
      .max_queue_depth = opts.max_queue_depth,
      .circuit_breaker_failures = opts.breaker};
  serve::BatchingQueue queue(session.value().get(), queue_config);

  // -- Replay the request stream -----------------------------------------
  const data::WindowDataset& test = splits.test;
  const int64_t n_windows = test.size();
  if (n_windows == 0) {
    std::fprintf(stderr, "dataset too short for the requested window\n");
    return 1;
  }
  const serve::RequestOptions request_options{.deadline_us =
                                                  opts.deadline_ms * 1000};
  std::atomic<int64_t> submitted{0}, delivered{0}, shed{0}, rejected{0},
      failed{0}, reloads{0}, reload_failures{0};
  std::vector<std::thread> clients;
  for (int64_t c = 0; c < opts.client_threads; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Result<serve::Forecast>>> futures;
      for (int64_t r = c; r < opts.requests; r += opts.client_threads) {
        futures.push_back(
            queue.Submit(test.GetRange(r % n_windows, 1), request_options));
        // Hot-reload under live client load: the swap is atomic, so no
        // in-flight request should fail because of it.
        if (opts.reload_every_n > 0 && !opts.checkpoint.empty() &&
            ++submitted % opts.reload_every_n == 0) {
          if (session.value()->Reload(opts.checkpoint).ok()) {
            ++reloads;
          } else {
            ++reload_failures;
          }
        }
      }
      for (auto& f : futures) {
        const Result<serve::Forecast> result = f.get();
        if (result.ok()) {
          ++delivered;
        } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
          ++shed;
        } else if (result.status().code() == StatusCode::kResourceExhausted ||
                   result.status().code() == StatusCode::kUnavailable) {
          ++rejected;
        } else {
          ++failed;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  queue.Shutdown();

  // -- Report -------------------------------------------------------------
  metrics::Registry& registry = metrics::Registry::Global();
  const int64_t requests = registry.GetCounter("serve.requests").value();
  const int64_t batches = registry.GetCounter("serve.batches").value();
  const metrics::Histogram::Snapshot latency =
      registry.GetHistogram("serve.request_latency_seconds").GetSnapshot();
  // series/batch divides *delivered* (not offered) requests: rejected and
  // shed requests never occupy a batch slot.
  std::printf("served %lld requests in %lld micro-batches (%.2f series/batch)\n",
              static_cast<long long>(requests),
              static_cast<long long>(batches),
              batches > 0 ? static_cast<double>(delivered.load()) /
                                static_cast<double>(batches)
                          : 0.0);
  std::printf("request latency: p50 %.1fms  p95 %.1fms  p99 %.1fms  (n=%lld)\n",
              serve::HistogramQuantile(latency, 0.50) * 1e3,
              serve::HistogramQuantile(latency, 0.95) * 1e3,
              serve::HistogramQuantile(latency, 0.99) * 1e3,
              static_cast<long long>(latency.count));
  std::printf(
      "delivered %lld  shed %lld (%.1f%%)  rejected %lld (%.1f%%)  "
      "failed %lld\n",
      static_cast<long long>(delivered.load()),
      static_cast<long long>(shed.load()),
      100.0 * static_cast<double>(shed.load()) /
          static_cast<double>(opts.requests),
      static_cast<long long>(rejected.load()),
      100.0 * static_cast<double>(rejected.load()) /
          static_cast<double>(opts.requests),
      static_cast<long long>(failed.load()));
  if (opts.reload_every_n > 0) {
    std::printf("hot reloads: %lld ok, %lld failed\n",
                static_cast<long long>(reloads.load()),
                static_cast<long long>(reload_failures.load()));
  }

  if (!opts.metrics_out.empty()) {
    const Status written =
        io::AtomicWriteFile(opts.metrics_out, registry.ToJson());
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write metrics: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", opts.metrics_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace conformer

int main(int argc, char** argv) { return conformer::Main(argc, argv); }
