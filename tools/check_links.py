#!/usr/bin/env python3
"""Markdown link checker for the docs index (CI docs job; stdlib only).

Usage: check_links.py [ROOT]

Walks every ``*.md`` under ROOT (default: the current directory), extracts
inline ``[text](target)`` links outside fenced code blocks, and validates:

* relative file targets exist (links are resolved against the linking
  file's directory);
* ``#anchor`` fragments — same-file or cross-file — match a heading in the
  target document, using GitHub's slug rules (lowercase, punctuation
  stripped, spaces to hyphens, ``-N`` suffixes for duplicates).

Skipped: absolute ``http(s)://`` / ``mailto:`` targets (no network in CI),
and targets that resolve outside ROOT (e.g. the README's ``../../actions``
badge, which only exists on the GitHub side).

Exit code 0 when every link resolves, 1 with one line per broken link
otherwise, 2 on usage errors.
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^()\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE = re.compile(r"^\s*(```|~~~)")

SKIP_DIRS = {".git", ".github", "third_party"}


def find_markdown(root):
    """All .md files under root, pruning VCS/build directories."""
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d
            for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        )
        for name in sorted(filenames):
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return found


def strip_fenced_code(lines):
    """Lines with fenced code blocks blanked out (links in code are prose
    about syntax, not navigation)."""
    kept = []
    in_fence = False
    for line in lines:
        if FENCE.match(line):
            in_fence = not in_fence
            kept.append("")
        elif in_fence:
            kept.append("")
        else:
            kept.append(line)
    return kept


def github_slug(title, seen):
    """GitHub's anchor slug for a heading, tracking duplicates in `seen`."""
    slug = title.strip().lower()
    slug = re.sub(r"[`*_~\[\]()!\"#$%&'+,./:;<=>?@\\^{|}]", "", slug)
    slug = re.sub(r"\s", "-", slug)
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else "%s-%d" % (slug, count)


def heading_slugs(path):
    with open(path, encoding="utf-8") as f:
        lines = strip_fenced_code(f.read().splitlines())
    seen = {}
    slugs = set()
    for line in lines:
        match = HEADING.match(line)
        if match:
            slugs.add(github_slug(match.group(2), seen))
    return slugs


def extract_links(path):
    """(line_number, target) pairs for inline links and images."""
    with open(path, encoding="utf-8") as f:
        lines = strip_fenced_code(f.read().splitlines())
    links = []
    for number, line in enumerate(lines, start=1):
        line = re.sub(r"`[^`]*`", "", line)  # Inline code spans.
        for pattern in (INLINE_LINK, IMAGE_LINK):
            for match in pattern.finditer(line):
                links.append((number, match.group(1)))
    return links


def check_file(md_path, root):
    """Broken-link messages for one Markdown file."""
    errors = []
    for number, target in extract_links(md_path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path_part)
            )
            if not resolved.startswith(os.path.normpath(root) + os.sep):
                continue  # Outside the repo (e.g. ../../actions badge).
            if not os.path.exists(resolved):
                errors.append(
                    "%s:%d: broken link: %s" % (md_path, number, target)
                )
                continue
            anchor_file = resolved
        else:
            anchor_file = md_path
        if anchor:
            if not anchor_file.endswith(".md") or os.path.isdir(anchor_file):
                continue  # Anchors into non-Markdown files: not checkable.
            if anchor.lower() not in heading_slugs(anchor_file):
                errors.append(
                    "%s:%d: missing anchor: %s" % (md_path, number, target)
                )
    return errors


def main(argv):
    if len(argv) > 2:
        print(__doc__)
        return 2
    root = os.path.abspath(argv[1]) if len(argv) == 2 else os.getcwd()
    if not os.path.isdir(root):
        print("check_links: not a directory: %s" % root)
        return 2

    files = find_markdown(root)
    errors = []
    checked = 0
    for md_path in files:
        errors.extend(check_file(md_path, root))
        checked += 1
    for message in errors:
        print(message)
    print(
        "check_links: %d file(s), %d broken link(s)" % (checked, len(errors))
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
