#!/usr/bin/env python3
"""Diff two bench JSON files and fail past a regression threshold.

Understands both bench output schemas in this repo:

  * bench_parallel_kernels: {"results": [{"kernel", "threads",
    "ops_per_sec"}, ...]} -- every (kernel, threads) row becomes a
    higher-is-better metric.
  * bench_profile_report (conformer.bench_profile.v1): the "throughput"
    entries are higher-is-better; "step_coverage" is higher-is-better with
    an absolute floor rather than a relative threshold (coverage is a
    correctness-of-instrumentation property, not a speed).

Usage:
  compare_bench.py baseline.json current.json [--threshold 0.10]
      [--coverage-floor 0.95] [--warn-only]

Exit status: 0 when no metric regressed beyond the threshold (improvements
never fail), 1 on regression, 2 on malformed input. --warn-only always
exits 0 so PR builds can surface deltas without gating (CI passes it for
pull_request events and omits it on main).
"""

import argparse
import json
import sys


def extract_metrics(doc):
    """Returns {metric_name: (value, higher_is_better)}."""
    metrics = {}
    if isinstance(doc.get("results"), list):
        for row in doc["results"]:
            key = "{}/t{}".format(row["kernel"], row["threads"])
            metrics[key + "/ops_per_sec"] = (float(row["ops_per_sec"]), True)
    for key, value in (doc.get("throughput") or {}).items():
        # All throughput entries are rates; *_seconds would be lower-is-better
        # but the report only exports *_per_sec.
        metrics["throughput/" + key] = (float(value), True)
    if "step_coverage" in doc:
        metrics["step_coverage"] = (float(doc["step_coverage"]), True)
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max tolerated fractional regression per metric (default 0.10)",
    )
    parser.add_argument(
        "--coverage-floor",
        type=float,
        default=0.95,
        help="absolute minimum for step_coverage (default 0.95)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0",
    )
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = extract_metrics(json.load(f))
        with open(args.current) as f:
            current = extract_metrics(json.load(f))
    except (OSError, ValueError, KeyError, TypeError) as err:
        print("compare_bench: cannot read inputs: {}".format(err),
              file=sys.stderr)
        return 2
    if not baseline:
        print("compare_bench: no comparable metrics in baseline",
              file=sys.stderr)
        return 2

    failures = []
    print("{:<44} {:>14} {:>14} {:>8}".format("metric", "baseline", "current",
                                              "delta"))
    for name in sorted(baseline):
        base_value, higher_better = baseline[name]
        if name not in current:
            failures.append("{}: missing from current run".format(name))
            continue
        cur_value, _ = current[name]
        if base_value != 0:
            delta = (cur_value - base_value) / abs(base_value)
        else:
            delta = 0.0
        regression = -delta if higher_better else delta
        marker = ""
        if name == "step_coverage":
            if cur_value < args.coverage_floor:
                marker = "  << below floor {}".format(args.coverage_floor)
                failures.append("{}: {:.4f} below floor {:.2f}".format(
                    name, cur_value, args.coverage_floor))
        elif regression > args.threshold:
            marker = "  << regressed past {:.0%}".format(args.threshold)
            failures.append("{}: {:.4f} -> {:.4f} ({:+.1%})".format(
                name, base_value, cur_value, delta))
        print("{:<44} {:>14.4f} {:>14.4f} {:>+7.1%}{}".format(
            name, base_value, cur_value, delta, marker))

    # Metrics present only in the current run get their own NEW rows in the
    # summary table (full name and value, not a squashed one-liner) so a PR
    # adding bench coverage shows exactly what it added. They are never gated:
    # there is no baseline value to regress from until the baseline file is
    # regenerated.
    for name in sorted(set(current) - set(baseline)):
        print("{:<44} {:>14} {:>14.4f}     NEW".format(
            name, "-", current[name][0]))

    if failures:
        print("\ncompare_bench: {} regression(s):".format(len(failures)),
              file=sys.stderr)
        for failure in failures:
            print("  " + failure, file=sys.stderr)
        if args.warn_only:
            print("compare_bench: --warn-only set, exiting 0",
                  file=sys.stderr)
            return 0
        return 1
    print("\ncompare_bench: OK ({} metrics within {:.0%})".format(
        len(baseline), args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
