#!/usr/bin/env python3
"""Inspect conformer training checkpoints without loading them into C++.

Usage:
  inspect_checkpoint.py <checkpoint-file-or-directory> [--json]

Given a directory, reads its MANIFEST and inspects every retained
checkpoint (newest last); given a file, inspects just that file. For each
checkpoint the section table is walked, every CRC32 is recomputed, and the
model / optimizer / trainer payloads are decoded far enough to print the
tensor table and the resume cursor (see docs/ROBUSTNESS.md for the format).

Exit status: 0 when every inspected checkpoint validates, 1 when any
checkpoint is corrupt or structurally invalid, 2 on usage or I/O errors.
Stdlib-only on purpose so it runs anywhere CI does.
"""

import json
import os
import struct
import sys
import zlib

CHECKPOINT_MAGIC = 0xC04FCC01
CHECKPOINT_VERSION = 1
MODULE_MAGIC = 0xC04F04E8
MANIFEST_NAME = "MANIFEST"
MANIFEST_HEADER = "conformer-checkpoint-manifest v1"
MAX_SECTIONS = 64


class CorruptCheckpoint(Exception):
    """Raised when a checkpoint fails structural or CRC validation."""


class Cursor:
    """Little-endian reader over a bytes payload with bounds checking."""

    def __init__(self, data, what):
        self.data = data
        self.offset = 0
        self.what = what

    def take(self, n, what):
        if self.offset + n > len(self.data):
            raise CorruptCheckpoint(
                "%s: truncated while reading %s (need %d bytes at offset %d, "
                "have %d)" % (self.what, what, n, self.offset, len(self.data))
            )
        chunk = self.data[self.offset : self.offset + n]
        self.offset += n
        return chunk

    def u32(self, what):
        return struct.unpack("<I", self.take(4, what))[0]

    def u64(self, what):
        return struct.unpack("<Q", self.take(8, what))[0]

    def i64(self, what):
        return struct.unpack("<q", self.take(8, what))[0]

    def f64(self, what):
        return struct.unpack("<d", self.take(8, what))[0]

    def string(self, what, max_len=1 << 20):
        n = self.u64(what + " length")
        if n > max_len:
            raise CorruptCheckpoint(
                "%s: implausible %s length %d" % (self.what, what, n)
            )
        return self.take(n, what).decode("utf-8", errors="replace")

    def skip_floats(self, what, max_elems=1 << 32):
        n = self.u64(what + " count")
        if n > max_elems:
            raise CorruptCheckpoint(
                "%s: implausible %s count %d" % (self.what, what, n)
            )
        self.take(n * 4, what)
        return n


def parse_sections(data, path):
    """Returns [(name, payload)] with every CRC verified."""
    cur = Cursor(data, path)
    magic = cur.u32("magic")
    if magic != CHECKPOINT_MAGIC:
        raise CorruptCheckpoint(
            "%s: bad magic 0x%08X (expected 0x%08X)"
            % (path, magic, CHECKPOINT_MAGIC)
        )
    version = cur.u32("version")
    if version != CHECKPOINT_VERSION:
        raise CorruptCheckpoint("%s: unsupported version %d" % (path, version))
    count = cur.u32("section count")
    if count == 0 or count > MAX_SECTIONS:
        raise CorruptCheckpoint(
            "%s: implausible section count %d" % (path, count)
        )
    sections = []
    for _ in range(count):
        name = cur.string("section name", max_len=256)
        payload_len = cur.u64("section '%s' length" % name)
        stored_crc = cur.u32("section '%s' crc" % name)
        payload = cur.take(payload_len, "section '%s' payload" % name)
        computed = zlib.crc32(payload) & 0xFFFFFFFF
        if computed != stored_crc:
            raise CorruptCheckpoint(
                "%s: CRC mismatch in section '%s' (stored %u, computed %u)"
                % (path, name, stored_crc, computed)
            )
        sections.append((name, payload))
    return sections


def parse_model(payload, path):
    cur = Cursor(payload, path + ": model")
    if cur.u32("module magic") != MODULE_MAGIC:
        raise CorruptCheckpoint(path + ": model section has a bad magic")
    count = cur.u64("parameter count")
    if count > 1 << 20:
        raise CorruptCheckpoint(
            "%s: implausible parameter count %d" % (path, count)
        )
    tensors = []
    for _ in range(count):
        name = cur.string("parameter name", max_len=4096)
        rank = cur.u64("rank of '%s'" % name)
        if rank > 16:
            raise CorruptCheckpoint(
                "%s: corrupt rank %d for '%s'" % (path, rank, name)
            )
        shape = [cur.i64("dim of '%s'" % name) for _ in range(rank)]
        numel = 1
        for d in shape:
            if d < 0:
                raise CorruptCheckpoint(
                    "%s: negative dim %d for '%s'" % (path, d, name)
                )
            numel *= d
        cur.take(numel * 4, "data of '%s'" % name)
        tensors.append({"name": name, "shape": shape, "numel": numel})
    return tensors


def parse_optimizer(payload, path):
    cur = Cursor(payload, path + ": optimizer")
    kind = cur.string("optimizer type", max_len=64)
    info = {"type": kind}
    if kind == "sgd":
        info["lr"] = cur.f64("sgd lr")
        info["momentum"] = cur.f64("sgd momentum")
        info["buffers"] = cur.u64("velocity buffer count")
    elif kind == "adam":
        info["lr"] = cur.f64("adam lr")
        info["beta1"] = cur.f64("adam beta1")
        info["beta2"] = cur.f64("adam beta2")
        info["eps"] = cur.f64("adam eps")
        info["weight_decay"] = cur.f64("adam weight decay")
        info["step_count"] = cur.i64("adam step count")
        info["buffers"] = cur.u64("m buffer count")
    return info


def parse_trainer(payload, path):
    cur = Cursor(payload, path + ": trainer")
    info = {
        "epoch": cur.i64("epoch"),
        "step_in_epoch": cur.i64("step_in_epoch"),
        "global_step": cur.i64("global_step"),
        "loss_sum": cur.f64("loss_sum"),
        "finite_batches": cur.i64("finite_batches"),
        "best_val": cur.f64("best_val"),
        "bad_epochs": cur.i64("bad_epochs"),
        "epochs_run": cur.i64("epochs_run"),
        "best_val_mse": cur.f64("best_val_mse"),
        "early_stopped": cur.i64("early_stopped") != 0,
        "nonfinite_steps": cur.i64("nonfinite_steps"),
    }
    for cursor_field in ("epoch", "step_in_epoch", "global_step"):
        if info[cursor_field] < 0:
            raise CorruptCheckpoint(
                "%s: negative trainer cursor %s" % (path, cursor_field)
            )
    n = cur.u64("train_losses count")
    [cur.f64("train_losses entry") for _ in range(min(n, 1 << 24))]
    info["train_loss_epochs"] = n
    n = cur.u64("val_mses count")
    [cur.f64("val_mses entry") for _ in range(min(n, 1 << 24))]
    info["val_mse_epochs"] = n
    n = cur.u64("best_snapshot count")
    for _ in range(min(n, 1 << 20)):
        cur.skip_floats("best_snapshot buffer")
    info["best_snapshot_buffers"] = n
    return info


def inspect_file(path):
    """Returns a report dict; raises CorruptCheckpoint on invalid input."""
    with open(path, "rb") as f:
        data = f.read()
    sections = parse_sections(data, path)
    report = {
        "path": path,
        "bytes": len(data),
        "sections": [
            {"name": name, "bytes": len(payload)} for name, payload in sections
        ],
    }
    by_name = dict(sections)
    for required in ("model", "optimizer", "rng", "trainer"):
        if required not in by_name:
            raise CorruptCheckpoint(
                "%s: missing section '%s'" % (path, required)
            )
    report["model"] = parse_model(by_name["model"], path)
    report["optimizer"] = parse_optimizer(by_name["optimizer"], path)
    report["trainer"] = parse_trainer(by_name["trainer"], path)
    report["rng_state_chars"] = len(by_name["rng"])
    return report


def manifest_entries(directory):
    manifest = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest):
        raise CorruptCheckpoint(directory + ": no MANIFEST")
    with open(manifest) as f:
        lines = [line.strip() for line in f if line.strip()]
    if not lines or lines[0] != MANIFEST_HEADER:
        raise CorruptCheckpoint(directory + ": MANIFEST header is invalid")
    return [os.path.join(directory, name) for name in lines[1:]]


def print_report(report):
    print("%s (%d bytes)" % (report["path"], report["bytes"]))
    print(
        "  sections: "
        + ", ".join(
            "%s[%d]" % (s["name"], s["bytes"]) for s in report["sections"]
        )
        + "  (all CRCs ok)"
    )
    trainer = report["trainer"]
    print(
        "  cursor: epoch %d step %d (global step %d), %d epochs evaluated"
        % (
            trainer["epoch"],
            trainer["step_in_epoch"],
            trainer["global_step"],
            trainer["epochs_run"],
        )
    )
    print(
        "  early stopping: best_val=%.6g bad_epochs=%d early_stopped=%s "
        "nonfinite_steps=%d"
        % (
            trainer["best_val"],
            trainer["bad_epochs"],
            trainer["early_stopped"],
            trainer["nonfinite_steps"],
        )
    )
    opt = report["optimizer"]
    detail = " ".join(
        "%s=%.6g" % (k, v)
        for k, v in opt.items()
        if k not in ("type", "buffers", "step_count")
    )
    extras = ""
    if "step_count" in opt:
        extras = " step_count=%d" % opt["step_count"]
    print("  optimizer: %s %s%s" % (opt["type"], detail, extras))
    total = sum(t["numel"] for t in report["model"])
    print(
        "  model: %d tensors, %d parameters" % (len(report["model"]), total)
    )
    for tensor in report["model"]:
        print(
            "    %-40s %-16s %8d"
            % (
                tensor["name"],
                "x".join(str(d) for d in tensor["shape"]) or "scalar",
                tensor["numel"],
            )
        )


def main(argv):
    args = [a for a in argv[1:] if a != "--json"]
    as_json = "--json" in argv[1:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    target = args[0]
    if os.path.isdir(target):
        try:
            paths = manifest_entries(target)
        except CorruptCheckpoint as e:
            print("error: %s" % e, file=sys.stderr)
            return 1
        if not paths:
            print("error: %s: MANIFEST lists no checkpoints" % target,
                  file=sys.stderr)
            return 1
    elif os.path.exists(target):
        paths = [target]
    else:
        print("error: no such file or directory: %s" % target,
              file=sys.stderr)
        return 2

    reports = []
    failed = False
    for path in paths:
        try:
            reports.append(inspect_file(path))
        except CorruptCheckpoint as e:
            failed = True
            print("error: %s" % e, file=sys.stderr)
        except OSError as e:
            failed = True
            print("error: %s: %s" % (path, e), file=sys.stderr)
    if as_json:
        print(json.dumps({"checkpoints": reports, "ok": not failed}, indent=2))
    else:
        for report in reports:
            print_report(report)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
