// Multi-tenant fleet load generator (docs/SERVING.md, "Driving a fleet
// with fleet_loadgen"): stands up a FleetServer with the requested tenant
// mix, sweeps an open-loop Poisson request stream across a range of offered
// loads, and prints a per-tenant saturation table — goodput and latency
// quantiles per load point — so the knee of the fleet's saturation curve is
// one command away.
//
//   fleet_loadgen --tenants linear@8:2,linear@16:1 --rps 32 --sweep 4
//       --duration-s 0.5 --deadline-ms 50 --json curve.json
//
// Tenant specs are KEY[:MIX[:WEIGHT]]: KEY is the model@horizon tenant key
// (the horizon sets the session's pred_len), MIX the relative traffic
// share, WEIGHT the dispatcher's round-robin share. Models serve fresh
// (untrained) weights — load shape does not depend on parameter values.
// --think-scale-us adds Pareto heavy-tail think time to every client's
// arrival schedule (bursty traffic at the same long-run rate).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/dataset_registry.h"
#include "serve/fleet_server.h"
#include "serve/loadgen.h"
#include "serve/model_registry.h"
#include "util/binary_io.h"

namespace conformer {
namespace {

struct TenantArg {
  std::string key;
  double mix = 1.0;
  int64_t weight = 1;
};

struct Options {
  std::string tenants = "linear@8:2,linear@16:1";
  std::string dataset = "etth1";
  std::string json_out;
  int64_t dispatchers = 2;
  int64_t clients = 4;
  int64_t max_batch = 8;
  int64_t delay_us = 1000;
  int64_t max_queue_depth = 64;
  int64_t breaker = 0;
  int64_t deadline_ms = 0;
  double rps = 32.0;
  int64_t sweep = 4;
  double sweep_factor = 2.0;
  double duration_s = 1.0;
  double think_scale_us = 0.0;
  double think_alpha = 1.5;
  int64_t input_len = 32;
  int64_t label_len = 16;
  int64_t seed = 42;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: fleet_loadgen [options]\n"
      "  --tenants SPECS       comma list of KEY[:MIX[:WEIGHT]]; KEY is\n"
      "                        model@horizon (default linear@8:2,linear@16:1)\n"
      "  --dataset NAME        synthetic dataset name (default etth1)\n"
      "  --dispatchers N       shared dispatcher shards (default 2)\n"
      "  --clients N           open-loop client threads (default 4)\n"
      "  --max-batch N         per-tenant micro-batch cap (default 8)\n"
      "  --delay-us N          per-tenant coalescing delay (default 1000)\n"
      "  --max-queue-depth N   per-tenant admission bound (default 64)\n"
      "  --breaker N           per-tenant circuit breaker (default 0 = off)\n"
      "  --deadline-ms N       per-request deadline (default 0 = none)\n"
      "  --rps R               first offered load, requests/s (default 32)\n"
      "  --sweep N             load points, multiplying by --sweep-factor\n"
      "                        each step (default 4)\n"
      "  --sweep-factor F      offered-load multiplier per step (default 2)\n"
      "  --duration-s S        arrival window per load point (default 1.0)\n"
      "  --think-scale-us S    Pareto heavy-tail think time scale (default 0\n"
      "                        = pure Poisson arrivals)\n"
      "  --think-alpha A       Pareto tail index (default 1.5)\n"
      "  --input-len/--label-len N   window geometry (32/16; pred_len comes\n"
      "                        from each tenant key's horizon)\n"
      "  --seed N              RNG seed (default 42)\n"
      "  --json FILE           write the saturation curve JSON here\n");
}

bool ParseInt(const char* value, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(value, &end, 10);
  return end != value && *end == '\0';
}

bool ParseDouble(const char* value, double* out) {
  char* end = nullptr;
  *out = std::strtod(value, &end);
  return end != value && *end == '\0';
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--tenants" && (v = next())) {
      opts->tenants = v;
    } else if (arg == "--dataset" && (v = next())) {
      opts->dataset = v;
    } else if (arg == "--json" && (v = next())) {
      opts->json_out = v;
    } else if (arg == "--dispatchers" && (v = next())) {
      if (!ParseInt(v, &opts->dispatchers)) return false;
    } else if (arg == "--clients" && (v = next())) {
      if (!ParseInt(v, &opts->clients)) return false;
    } else if (arg == "--max-batch" && (v = next())) {
      if (!ParseInt(v, &opts->max_batch)) return false;
    } else if (arg == "--delay-us" && (v = next())) {
      if (!ParseInt(v, &opts->delay_us)) return false;
    } else if (arg == "--max-queue-depth" && (v = next())) {
      if (!ParseInt(v, &opts->max_queue_depth)) return false;
    } else if (arg == "--breaker" && (v = next())) {
      if (!ParseInt(v, &opts->breaker)) return false;
    } else if (arg == "--deadline-ms" && (v = next())) {
      if (!ParseInt(v, &opts->deadline_ms)) return false;
    } else if (arg == "--rps" && (v = next())) {
      if (!ParseDouble(v, &opts->rps)) return false;
    } else if (arg == "--sweep" && (v = next())) {
      if (!ParseInt(v, &opts->sweep)) return false;
    } else if (arg == "--sweep-factor" && (v = next())) {
      if (!ParseDouble(v, &opts->sweep_factor)) return false;
    } else if (arg == "--duration-s" && (v = next())) {
      if (!ParseDouble(v, &opts->duration_s)) return false;
    } else if (arg == "--think-scale-us" && (v = next())) {
      if (!ParseDouble(v, &opts->think_scale_us)) return false;
    } else if (arg == "--think-alpha" && (v = next())) {
      if (!ParseDouble(v, &opts->think_alpha)) return false;
    } else if (arg == "--input-len" && (v = next())) {
      if (!ParseInt(v, &opts->input_len)) return false;
    } else if (arg == "--label-len" && (v = next())) {
      if (!ParseInt(v, &opts->label_len)) return false;
    } else if (arg == "--seed" && (v = next())) {
      if (!ParseInt(v, &opts->seed)) return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n",
                   arg.c_str());
      return false;
    }
  }
  return opts->rps > 0 && opts->sweep > 0 && opts->duration_s > 0 &&
         opts->sweep_factor > 0;
}

// "linear@8:2,conformer@16" -> [{linear@8, mix 2, weight 1}, ...].
bool ParseTenants(const std::string& spec, std::vector<TenantArg>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    TenantArg tenant;
    const size_t colon = item.find(':');
    tenant.key = item.substr(0, colon);
    if (colon != std::string::npos) {
      const std::string rest = item.substr(colon + 1);
      const size_t colon2 = rest.find(':');
      if (!ParseDouble(rest.substr(0, colon2).c_str(), &tenant.mix) ||
          tenant.mix <= 0) {
        return false;
      }
      if (colon2 != std::string::npos &&
          (!ParseInt(rest.c_str() + colon2 + 1, &tenant.weight) ||
           tenant.weight < 1)) {
        return false;
      }
    }
    if (!serve::ModelRegistry::ValidateKey(tenant.key).ok()) return false;
    out->push_back(std::move(tenant));
  }
  return !out->empty();
}

int Main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage();
    return 2;
  }
  std::vector<TenantArg> tenant_args;
  if (!ParseTenants(opts.tenants, &tenant_args)) {
    std::fprintf(stderr, "malformed --tenants spec: %s\n",
                 opts.tenants.c_str());
    Usage();
    return 2;
  }

  Result<data::TimeSeries> series = data::MakeDataset(opts.dataset, 0.08);
  if (!series.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 series.status().ToString().c_str());
    return 1;
  }

  // -- Fleet + traffic mix --------------------------------------------------
  serve::FleetServer fleet({.num_dispatchers = opts.dispatchers});
  std::vector<serve::TenantLoad> mix;
  for (const TenantArg& tenant : tenant_args) {
    // The horizon half of the key is the tenant's pred_len.
    const int64_t pred_len =
        std::strtoll(tenant.key.c_str() + tenant.key.find('@') + 1, nullptr,
                     10);
    if (pred_len <= 0) {
      std::fprintf(stderr, "tenant %s: horizon must be a positive integer\n",
                   tenant.key.c_str());
      return 2;
    }
    serve::TenantSpec spec;
    spec.session.model_name = tenant.key.substr(0, tenant.key.find('@'));
    spec.session.window = {.input_len = opts.input_len,
                           .label_len = opts.label_len,
                           .pred_len = pred_len};
    spec.session.dims = series.value().dims();
    spec.queue = {.max_batch_size = opts.max_batch,
                  .max_queue_delay_us = opts.delay_us,
                  .max_queue_depth = opts.max_queue_depth,
                  .circuit_breaker_failures = opts.breaker};
    spec.weight = tenant.weight;
    Status added = fleet.AddTenant(tenant.key, spec);
    if (!added.ok()) {
      std::fprintf(stderr, "failed to add tenant %s: %s\n",
                   tenant.key.c_str(), added.ToString().c_str());
      return 1;
    }
    data::DatasetSplits splits =
        data::MakeSplits(series.value(), spec.session.window);
    if (splits.test.size() == 0) {
      std::fprintf(stderr, "dataset too short for tenant %s\n",
                   tenant.key.c_str());
      return 1;
    }
    mix.push_back({tenant.key, splits.test.GetRange(0, 1), tenant.mix});
  }

  // -- Sweep ----------------------------------------------------------------
  std::string json = "{\"curve\": [";
  std::printf(
      "%-16s %10s %10s %12s %9s %9s %9s\n", "tenant", "offered", "ok/issued",
      "goodput/s", "p50 ms", "p95 ms", "p99 ms");
  for (int64_t step = 0; step < opts.sweep; ++step) {
    serve::LoadgenOptions load;
    load.offered_rps = opts.rps * std::pow(opts.sweep_factor,
                                           static_cast<double>(step));
    load.duration_seconds = opts.duration_s;
    load.num_clients = opts.clients;
    load.think_scale_us = opts.think_scale_us;
    load.think_tail_alpha = opts.think_alpha;
    load.deadline_us = opts.deadline_ms * 1000;
    load.seed = static_cast<uint64_t>(opts.seed) + step;
    const serve::LoadReport report = serve::RunOpenLoop(fleet, mix, load);

    json += std::string(step == 0 ? "" : ",") + "\n  {\"offered_rps\": " +
            std::to_string(report.offered_rps) +
            ", \"achieved_rps\": " + std::to_string(report.achieved_rps) +
            ", \"goodput_rps\": " + std::to_string(report.goodput_rps) +
            ", \"wall_seconds\": " + std::to_string(report.wall_seconds) +
            ", \"tenants\": [";
    for (size_t i = 0; i < report.tenants.size(); ++i) {
      const serve::TenantLoadStats& t = report.tenants[i];
      std::printf("%-16s %10.1f %4lld/%-5lld %12.1f %9.2f %9.2f %9.2f\n",
                  t.key.c_str(), report.offered_rps,
                  static_cast<long long>(t.ok),
                  static_cast<long long>(t.issued), t.goodput_rps, t.p50_ms,
                  t.p95_ms, t.p99_ms);
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "%s\n    {\"key\": \"%s\", \"issued\": %lld, \"ok\": %lld, "
          "\"rejected\": %lld, \"shed\": %lld, \"failed\": %lld, "
          "\"goodput_rps\": %.3f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
          "\"p99_ms\": %.3f}",
          i == 0 ? "" : ",", t.key.c_str(), static_cast<long long>(t.issued),
          static_cast<long long>(t.ok), static_cast<long long>(t.rejected),
          static_cast<long long>(t.shed), static_cast<long long>(t.failed),
          t.goodput_rps, t.p50_ms, t.p95_ms, t.p99_ms);
      json += row;
    }
    json += "\n  ]}";
    std::printf("%-16s %10.1f %10s %12.1f  (achieved %.1f rps)\n\n",
                "  = aggregate", report.offered_rps, "", report.goodput_rps,
                report.achieved_rps);
  }
  json += "\n]}\n";

  if (!opts.json_out.empty()) {
    const Status written = io::AtomicWriteFile(opts.json_out, json);
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", opts.json_out.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("saturation curve written to %s\n", opts.json_out.c_str());
  }
  fleet.Shutdown();
  return 0;
}

}  // namespace
}  // namespace conformer

int main(int argc, char** argv) { return conformer::Main(argc, argv); }
