#!/usr/bin/env bash
# Style gate: clang-format --dry-run -Werror over the enforced file list.
#
# Enforcement is opt-in per file so the gate can be adopted incrementally:
# files are added here once they are clean under .clang-format, after which
# any drift fails CI. New source files should be added when introduced.
#
# Usage: tools/check_format.sh
#   CLANG_FORMAT=clang-format-15 tools/check_format.sh   # pick a binary

set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: '$CLANG_FORMAT' not found; set CLANG_FORMAT" >&2
  exit 2
fi

ENFORCED=(
  src/util/metrics.h
  src/util/metrics.cc
  src/util/profiler.h
  src/util/profiler.cc
  src/util/trace_writer.h
  src/util/trace_writer.cc
  bench/bench_profile_report.cc
  tests/profiler_test.cc
)

"$CLANG_FORMAT" --version
"$CLANG_FORMAT" --dry-run -Werror --style=file "${ENFORCED[@]}"
echo "check_format: ${#ENFORCED[@]} files clean"
